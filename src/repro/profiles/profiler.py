"""Precomputed per-function performance profiles.

The controller in the paper estimates path times and costs "with performance
profiles of the functions".  A :class:`FunctionProfile` is that table: for
every configuration in a :class:`ConfigurationSpace` it stores the predicted
latency, the task cost and the per-job cost.  A :class:`ProfileStore` bundles
the profiles of all functions an experiment uses and is handed to every
scheduling policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.profiles.configuration import Configuration, ConfigurationSpace
from repro.profiles.perf_model import AnalyticalPerformanceModel, PerformanceModel
from repro.profiles.pricing import PricingModel
from repro.profiles.specs import FUNCTION_SPECS, FunctionSpec, get_function_spec

__all__ = ["ProfileEntry", "FunctionProfile", "ProfileStore"]


@dataclass(frozen=True)
class ProfileEntry:
    """Predicted behaviour of one function under one configuration."""

    config: Configuration
    latency_ms: float
    task_cost_cents: float
    per_job_cost_cents: float

    def __post_init__(self) -> None:
        if self.latency_ms <= 0:
            raise ValueError(f"latency_ms must be positive, got {self.latency_ms}")
        if self.task_cost_cents < 0 or self.per_job_cost_cents < 0:
            raise ValueError("costs must be non-negative")


@dataclass
class FunctionProfile:
    """All profile entries of one function, with fast lookups.

    Entries are stored twice: as a mapping keyed by configuration (for O(1)
    lookup during simulation) and as a list sorted by increasing latency
    (ESG_1Q consumes ``ConfigLists[j]`` "sorted in increasing latency").
    """

    spec: FunctionSpec
    entries: dict[Configuration, ProfileEntry]
    _by_latency: tuple[ProfileEntry, ...] = field(init=False, repr=False)
    _by_cost: tuple[ProfileEntry, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("a FunctionProfile needs at least one entry")
        ordered = tuple(sorted(self.entries.values(), key=lambda e: (e.latency_ms, e.per_job_cost_cents)))
        by_cost = tuple(sorted(self.entries.values(), key=lambda e: (e.per_job_cost_cents, e.latency_ms)))
        self._by_latency = ordered
        self._by_cost = by_cost

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def entry(self, config: Configuration) -> ProfileEntry:
        """Return the entry for ``config`` (KeyError if not profiled)."""
        try:
            return self.entries[config]
        except KeyError:
            raise KeyError(
                f"configuration {config} is not profiled for function {self.spec.name!r}"
            ) from None

    def latency_ms(self, config: Configuration) -> float:
        """Predicted latency of ``config``."""
        return self.entry(config).latency_ms

    def per_job_cost_cents(self, config: Configuration) -> float:
        """Predicted per-job cost of ``config``."""
        return self.entry(config).per_job_cost_cents

    def __contains__(self, config: Configuration) -> bool:
        return config in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # Ordered views used by the schedulers
    # ------------------------------------------------------------------
    def sorted_by_latency(self, *, max_batch: int | None = None) -> tuple[ProfileEntry, ...]:
        """Entries sorted by increasing latency, optionally capping the batch.

        ``max_batch`` reflects the number of jobs currently in the queue: a
        batch larger than the queue cannot be formed right now.
        """
        if max_batch is None:
            return self._by_latency
        return tuple(e for e in self._by_latency if e.config.batch_size <= max_batch)

    def sorted_by_cost(self, *, max_batch: int | None = None) -> tuple[ProfileEntry, ...]:
        """Entries sorted by increasing per-job cost."""
        if max_batch is None:
            return self._by_cost
        return tuple(e for e in self._by_cost if e.config.batch_size <= max_batch)

    # ------------------------------------------------------------------
    # Extremes used for pruning bounds
    # ------------------------------------------------------------------
    @property
    def min_latency_ms(self) -> float:
        """Smallest latency over all configurations (used by ``tLow``)."""
        return self._by_latency[0].latency_ms

    @property
    def min_per_job_cost_cents(self) -> float:
        """Smallest per-job cost over all configurations (used by ``rscLow``)."""
        return self._by_cost[0].per_job_cost_cents

    @property
    def fastest_entry(self) -> ProfileEntry:
        """The entry with the smallest latency (used by ``rscFastest``)."""
        return self._by_latency[0]

    @property
    def cheapest_entry(self) -> ProfileEntry:
        """The entry with the smallest per-job cost."""
        return self._by_cost[0]

    def base_latency_ms(self, minimum: Configuration) -> float:
        """Latency under the minimum configuration (defines the SLO scale L)."""
        return self.latency_ms(minimum)


@dataclass
class ProfileStore:
    """Profiles for a set of functions under one configuration space."""

    space: ConfigurationSpace
    pricing: PricingModel
    profiles: dict[str, FunctionProfile]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        function_names: Iterable[str] | None = None,
        *,
        space: ConfigurationSpace | None = None,
        perf_model: PerformanceModel | None = None,
        pricing: PricingModel | None = None,
        specs: Mapping[str, FunctionSpec] | None = None,
    ) -> "ProfileStore":
        """Profile every function in ``function_names`` over ``space``.

        Parameters
        ----------
        function_names:
            Functions to profile; defaults to all registered functions.
        space:
            Configuration space; defaults to :class:`ConfigurationSpace`'s
            default options.
        perf_model:
            Latency model; defaults to :class:`AnalyticalPerformanceModel`.
        pricing:
            Pricing model; defaults to the paper's AWS-derived prices.
        specs:
            Optional explicit spec mapping (overrides the global registry),
            used by tests and custom-application examples.
        """
        space = space or ConfigurationSpace()
        perf_model = perf_model or AnalyticalPerformanceModel()
        pricing = pricing or PricingModel()
        if specs is None:
            specs = FUNCTION_SPECS
        if function_names is None:
            function_names = sorted(specs)

        profiles: dict[str, FunctionProfile] = {}
        for name in function_names:
            spec = specs[name] if name in specs else get_function_spec(name)
            entries: dict[Configuration, ProfileEntry] = {}
            for config in space:
                latency = perf_model.latency_ms(spec, config)
                task_cost = pricing.task_cost_cents(config, latency)
                entries[config] = ProfileEntry(
                    config=config,
                    latency_ms=latency,
                    task_cost_cents=task_cost,
                    per_job_cost_cents=task_cost / config.batch_size,
                )
            profiles[name] = FunctionProfile(spec=spec, entries=entries)
        return cls(space=space, pricing=pricing, profiles=profiles)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def profile(self, function_name: str) -> FunctionProfile:
        """Return the profile of ``function_name`` (KeyError if missing)."""
        try:
            return self.profiles[function_name]
        except KeyError:
            available = ", ".join(sorted(self.profiles))
            raise KeyError(
                f"no profile for function {function_name!r}; available: {available}"
            ) from None

    def __contains__(self, function_name: str) -> bool:
        return function_name in self.profiles

    def function_names(self) -> list[str]:
        """Names of all profiled functions (sorted)."""
        return sorted(self.profiles)

    # ------------------------------------------------------------------
    # SLO helpers
    # ------------------------------------------------------------------
    def minimum_config_latency_ms(self, function_names: Iterable[str]) -> float:
        """Sum of minimum-configuration latencies along a function sequence.

        This is the paper's ``L``: "the time needed by the application to
        complete its entire workflow when it runs alone with the minimum
        configuration", from which the strict/moderate/relaxed SLOs are
        derived as 0.8 L / 1.0 L / 1.2 L.
        """
        minimum = self.space.minimum
        return sum(self.profile(name).latency_ms(minimum) for name in function_names)
