"""Specifications of the six DNN serverless functions used in the paper.

The numbers come from Table 3 of the paper: execution time in the minimum
configuration (1 vCPU, 1 vGPU, batch size 1), cold start time and input
image size.  ``cpu_fraction`` and ``output_mb`` are not published; they are
set to plausible values (pre/post-processing share of an inference function,
and the size of the tensor/image passed to the next stage) and only shape
second-order effects (CPU scaling, data-transfer latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ensure_in_range, ensure_non_negative, ensure_positive

__all__ = [
    "FunctionSpec",
    "FUNCTION_SPECS",
    "get_function_spec",
    "list_function_names",
    "register_function_spec",
]


@dataclass(frozen=True)
class FunctionSpec:
    """Static description of one DNN serverless function.

    Parameters
    ----------
    name:
        Identifier used throughout the package (e.g. ``"super_resolution"``).
    model_name:
        The underlying DNN model (column "Model" in Table 3).
    base_exec_ms:
        Execution time at the minimum configuration (1 vCPU, 1 vGPU,
        batch size 1), in milliseconds.
    cold_start_ms:
        Container cold-start time in milliseconds (pulling the image,
        loading the model onto the GPU, ...).
    input_mb:
        Size of the input the function reads, in megabytes; drives the
        data-transfer model when a stage runs on a different invoker than
        its predecessor.
    cpu_fraction:
        Fraction of ``base_exec_ms`` spent on the CPU (pre/post-processing);
        the rest is GPU time.
    output_mb:
        Size of the output passed to successor stages, in megabytes.
    """

    name: str
    model_name: str
    base_exec_ms: float
    cold_start_ms: float
    input_mb: float
    cpu_fraction: float = 0.2
    output_mb: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("FunctionSpec.name must be non-empty")
        ensure_positive(self.base_exec_ms, "base_exec_ms")
        ensure_non_negative(self.cold_start_ms, "cold_start_ms")
        ensure_non_negative(self.input_mb, "input_mb")
        ensure_non_negative(self.output_mb, "output_mb")
        ensure_in_range(self.cpu_fraction, 0.0, 1.0, "cpu_fraction")

    @property
    def cpu_ms(self) -> float:
        """CPU share of the base execution time."""
        return self.base_exec_ms * self.cpu_fraction

    @property
    def gpu_ms(self) -> float:
        """GPU share of the base execution time."""
        return self.base_exec_ms * (1.0 - self.cpu_fraction)


#: Table 3 of the paper.
FUNCTION_SPECS: dict[str, FunctionSpec] = {
    "super_resolution": FunctionSpec(
        name="super_resolution",
        model_name="SRGAN",
        base_exec_ms=86.0,
        cold_start_ms=3503.0,
        input_mb=2.7,
        cpu_fraction=0.20,
        output_mb=2.5,
    ),
    "segmentation": FunctionSpec(
        name="segmentation",
        model_name="deeplabv3_resnet50",
        base_exec_ms=293.0,
        cold_start_ms=16510.0,
        input_mb=2.5,
        cpu_fraction=0.15,
        output_mb=0.5,
    ),
    "deblur": FunctionSpec(
        name="deblur",
        model_name="DeblurGAN",
        base_exec_ms=319.0,
        cold_start_ms=22343.0,
        input_mb=1.1,
        cpu_fraction=0.15,
        output_mb=2.5,
    ),
    "classification": FunctionSpec(
        name="classification",
        model_name="ResNet50",
        base_exec_ms=147.0,
        cold_start_ms=18299.0,
        input_mb=0.147,
        cpu_fraction=0.25,
        output_mb=0.01,
    ),
    "background_removal": FunctionSpec(
        name="background_removal",
        model_name="U2Net",
        base_exec_ms=1047.0,
        cold_start_ms=3729.0,
        input_mb=2.5,
        cpu_fraction=0.10,
        output_mb=2.5,
    ),
    "depth_recognition": FunctionSpec(
        name="depth_recognition",
        model_name="MiDaS",
        base_exec_ms=828.0,
        cold_start_ms=16479.0,
        input_mb=0.648,
        cpu_fraction=0.15,
        output_mb=0.648,
    ),
}


def get_function_spec(name: str) -> FunctionSpec:
    """Return the spec registered under ``name``.

    Raises
    ------
    KeyError
        If no function with that name is registered; the message lists the
        available names to make typos easy to spot.
    """
    try:
        return FUNCTION_SPECS[name]
    except KeyError:
        available = ", ".join(sorted(FUNCTION_SPECS))
        raise KeyError(f"unknown function {name!r}; available: {available}") from None


def list_function_names() -> list[str]:
    """Return the registered function names in deterministic order."""
    return sorted(FUNCTION_SPECS)


def register_function_spec(spec: FunctionSpec, *, overwrite: bool = False) -> None:
    """Register a custom function spec (used by examples and tests).

    Parameters
    ----------
    spec:
        The specification to register.
    overwrite:
        If False (default) registering a name that already exists raises
        ``ValueError`` to protect the paper's Table 3 entries from
        accidental modification.
    """
    if spec.name in FUNCTION_SPECS and not overwrite:
        raise ValueError(
            f"function {spec.name!r} is already registered; pass overwrite=True to replace it"
        )
    FUNCTION_SPECS[spec.name] = spec
