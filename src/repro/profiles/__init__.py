"""DNN function specifications and performance/cost modelling.

This subpackage is the substitute for the paper's measured performance
profiles (Section 4, Table 3): the authors profiled six DNN inference
functions on an A100 under every (batch size, #vCPUs, #vGPUs) configuration
and drove their emulation from those measurements.  We anchor an analytic
model at the published minimum-configuration numbers and extend it across
the configuration cube with standard batching / data-parallel scaling laws.
"""

from repro.profiles.configuration import Configuration, ConfigurationSpace
from repro.profiles.perf_model import (
    AnalyticalPerformanceModel,
    NoisyPerformanceModel,
    PerformanceModel,
)
from repro.profiles.pricing import PricingModel
from repro.profiles.profiler import FunctionProfile, ProfileEntry, ProfileStore
from repro.profiles.specs import (
    FUNCTION_SPECS,
    FunctionSpec,
    get_function_spec,
    list_function_names,
)

__all__ = [
    "Configuration",
    "ConfigurationSpace",
    "PerformanceModel",
    "AnalyticalPerformanceModel",
    "NoisyPerformanceModel",
    "PricingModel",
    "FunctionProfile",
    "ProfileEntry",
    "ProfileStore",
    "FunctionSpec",
    "FUNCTION_SPECS",
    "get_function_spec",
    "list_function_names",
]
