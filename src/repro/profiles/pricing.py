"""Resource pricing model.

Section 4.1 of the paper: "Following AWS EC2 pricing, we set the price of a
vCPU to 0.034$/hour.  Based on the pricing of an entire GPU on AWS, we divide
it by # of vGPUs and set the price of a vGPU to 0.67$/hour."

Costs in this package are expressed in *cents* to match the per-job cost
examples in Figure 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.profiles.configuration import Configuration
from repro.utils.validation import ensure_non_negative

__all__ = ["PricingModel"]

_MS_PER_HOUR = 3_600_000.0


@dataclass(frozen=True)
class PricingModel:
    """Per-resource prices used for cost accounting.

    Parameters
    ----------
    vcpu_dollars_per_hour:
        Hourly price of one vCPU.
    vgpu_dollars_per_hour:
        Hourly price of one vGPU (one MIG slice).
    """

    vcpu_dollars_per_hour: float = 0.034
    vgpu_dollars_per_hour: float = 0.67

    def __post_init__(self) -> None:
        ensure_non_negative(self.vcpu_dollars_per_hour, "vcpu_dollars_per_hour")
        ensure_non_negative(self.vgpu_dollars_per_hour, "vgpu_dollars_per_hour")

    # ------------------------------------------------------------------
    # Rates
    # ------------------------------------------------------------------
    @property
    def vcpu_cents_per_ms(self) -> float:
        """Price of one vCPU for one millisecond, in cents."""
        return self.vcpu_dollars_per_hour * 100.0 / _MS_PER_HOUR

    @property
    def vgpu_cents_per_ms(self) -> float:
        """Price of one vGPU for one millisecond, in cents."""
        return self.vgpu_dollars_per_hour * 100.0 / _MS_PER_HOUR

    def rate_cents_per_ms(self, config: Configuration) -> float:
        """Combined price per millisecond of holding ``config``'s resources."""
        return (
            config.vcpus * self.vcpu_cents_per_ms
            + config.vgpus * self.vgpu_cents_per_ms
        )

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def task_cost_cents(self, config: Configuration, duration_ms: float) -> float:
        """Cost of holding ``config``'s resources for ``duration_ms``."""
        ensure_non_negative(duration_ms, "duration_ms")
        return self.rate_cents_per_ms(config) * duration_ms

    def per_job_cost_cents(self, config: Configuration, duration_ms: float) -> float:
        """Cost per job: task cost divided by the batch size.

        This matches the per-job cost formula in Figure 3 of the paper,
        e.g. ``(0.04 * 4 + 0.8) * 0.9 / 2 = 0.43 cents`` for a 0.9 s task on
        4 vCPUs + 1 vGPU with batch size 2.
        """
        return self.task_cost_cents(config, duration_ms) / config.batch_size

    @classmethod
    def figure3_example(cls) -> "PricingModel":
        """The unit prices used in the Figure 3 worked example.

        (1 vCPU: 0.04 cents/s, 1 vGPU: 0.8 cents/s.)  Only used in tests to
        check the cost arithmetic against the paper's own numbers.
        """
        return cls(
            vcpu_dollars_per_hour=0.04 / 100.0 * 3600.0,
            vgpu_dollars_per_hour=0.8 / 100.0 * 3600.0,
        )
