"""repro — reproduction of "ESG: Pipeline-Conscious Efficient Scheduling of
DNN Workflows on Serverless Platforms with Shareable GPUs" (HPDC 2024).

The package is organised as:

* :mod:`repro.profiles` — DNN function specs and the performance/cost model;
* :mod:`repro.workloads` — application DAGs and workload generation;
* :mod:`repro.cluster` — the serverless platform substrate (discrete-event
  simulator, controller, invokers, containers, prewarming, metrics);
* :mod:`repro.core` — the ESG scheduling algorithm (ESG_1Q, dominator-based
  SLO distribution, ESG_Dispatch);
* :mod:`repro.baselines` — the comparison schedulers (INFless, FaST-GShare,
  Orion, Aquatope);
* :mod:`repro.experiments` — the harness that regenerates every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import quick_simulation
    summary = quick_simulation(policy="esg", setting="strict-light", num_requests=50)
    print(summary.slo_hit_rate, summary.total_cost_cents)
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.core.config import Configuration, ConfigurationSpace
from repro.core.esg import ESGPolicy
from repro.profiles import FUNCTION_SPECS, FunctionSpec, PricingModel, ProfileStore
from repro.workloads import (
    WORKLOAD_SETTINGS,
    WorkloadGenerator,
    WorkloadSetting,
    Workflow,
    build_paper_applications,
)

__all__ = [
    "__version__",
    "Configuration",
    "ConfigurationSpace",
    "ESGPolicy",
    "FunctionSpec",
    "FUNCTION_SPECS",
    "PricingModel",
    "ProfileStore",
    "Workflow",
    "WorkloadGenerator",
    "WorkloadSetting",
    "WORKLOAD_SETTINGS",
    "build_paper_applications",
    "quick_simulation",
]


def quick_simulation(
    policy: str = "esg",
    setting: str = "strict-light",
    num_requests: int = 50,
    seed: int = 42,
):
    """Run one small end-to-end simulation and return its :class:`RunSummary`.

    Convenience entry point used by the README quickstart; see
    :mod:`repro.experiments.runner` for the full-control API.
    """
    from repro.experiments.runner import run_setting

    return run_setting(
        policy_name=policy, setting_name=setting, num_requests=num_requests, seed=seed
    )
