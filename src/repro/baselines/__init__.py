"""Baseline schedulers the paper compares against (Section 4.2).

* :class:`INFlessPolicy` — per-function enumeration guided by a resource
  -efficiency / throughput metric; fragmentation-minimising placement;
  SLO distributed over stages by average service time.
* :class:`FaSTGSharePolicy` — per-function enumeration guided by
  throughput-per-vGPU; GPU-fragmentation-minimising placement; the same
  service-time SLO distribution.
* :class:`OrionPolicy` — best-first search over the joint per-stage
  configuration vector with a search-time cutoff; the plan is fixed at the
  first stage of each request (no adaptation).
* :class:`AquatopePolicy` — Bayesian-optimisation-trained static
  configurations (offline training, no adaptation).

All baselines use the same GPU sharing, batching, prewarming and (except the
first two, which follow their own fragmentation-minimising placement) data
paths as ESG, so the comparison isolates the scheduling algorithm, exactly
as in the paper.
"""

from repro.baselines.aquatope import AquatopePolicy
from repro.baselines.bo import BayesianOptimizer, GaussianProcess
from repro.baselines.fastgshare import FaSTGSharePolicy
from repro.baselines.infless import INFlessPolicy
from repro.baselines.orion import OrionPolicy
from repro.baselines.service_time_slo import service_time_fractions

__all__ = [
    "INFlessPolicy",
    "FaSTGSharePolicy",
    "OrionPolicy",
    "AquatopePolicy",
    "BayesianOptimizer",
    "GaussianProcess",
    "service_time_fractions",
]
