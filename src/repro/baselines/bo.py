"""Minimal Gaussian-process Bayesian optimisation (numpy/scipy only).

Aquatope relies on an offline Bayesian-optimisation training process to
learn good per-stage configurations for every application.  This module
provides the optimiser that :mod:`repro.baselines.aquatope` uses: a standard
GP surrogate with an RBF kernel and expected-improvement acquisition over
the unit hypercube, following the training protocol described in
Section 4.2 of the ESG paper (100 bootstrapping samples, 50 rounds, five
configurations sampled per round).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

__all__ = ["GaussianProcess", "BayesianOptimizer", "BOResult"]


@dataclass
class GaussianProcess:
    """GP regressor with an RBF kernel and observation noise.

    The target values are standardised internally so the prior mean (zero)
    and unit signal variance are reasonable regardless of the objective's
    scale.
    """

    lengthscale: float | None = None
    noise: float = 1e-4
    _x: np.ndarray | None = field(default=None, repr=False)
    _y_mean: float = field(default=0.0, repr=False)
    _y_std: float = field(default=1.0, repr=False)
    _chol: tuple[np.ndarray, bool] | None = field(default=None, repr=False)
    _alpha: np.ndarray | None = field(default=None, repr=False)

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = np.sum(a**2, axis=1)[:, None] + np.sum(b**2, axis=1)[None, :] - 2.0 * a @ b.T
        np.maximum(sq, 0.0, out=sq)
        return np.exp(-0.5 * sq / (self.lengthscale**2))

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Fit the GP to observations ``x`` (n x d) and ``y`` (n,)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]} values")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a GP to zero observations")
        if self.lengthscale is None:
            # Median-distance heuristic.
            if x.shape[0] > 1:
                diffs = x[:, None, :] - x[None, :, :]
                dists = np.sqrt(np.sum(diffs**2, axis=-1))
                positive = dists[dists > 0]
                self.lengthscale = float(np.median(positive)) if positive.size else 1.0
            else:
                self.lengthscale = 1.0
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        y_norm = (y - self._y_mean) / self._y_std
        k = self._kernel(x, x)
        k[np.diag_indices_from(k)] += self.noise
        self._chol = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._chol, y_norm)
        self._x = x
        return self

    def predict(self, x_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at ``x_new`` (m x d)."""
        if self._x is None or self._alpha is None or self._chol is None:
            raise RuntimeError("GaussianProcess.predict called before fit")
        x_new = np.atleast_2d(np.asarray(x_new, dtype=float))
        k_star = self._kernel(x_new, self._x)
        mean_norm = k_star @ self._alpha
        v = cho_solve(self._chol, k_star.T)
        var = 1.0 + self.noise - np.sum(k_star * v.T, axis=1)
        np.maximum(var, 1e-12, out=var)
        mean = mean_norm * self._y_std + self._y_mean
        std = np.sqrt(var) * self._y_std
        return mean, std


@dataclass(frozen=True)
class BOResult:
    """Outcome of one Bayesian-optimisation run."""

    best_x: np.ndarray
    best_y: float
    xs: np.ndarray
    ys: np.ndarray
    evaluations: int


@dataclass
class BayesianOptimizer:
    """Expected-improvement BO over the unit hypercube (minimisation).

    Parameters
    ----------
    num_dims:
        Dimensionality of the search space (each dimension in [0, 1]).
    objective:
        Callable mapping a point (1-d array of length ``num_dims``) to the
        scalar to minimise.
    rng:
        Random generator (bootstrap samples and candidate pools).
    bootstrap:
        Number of random samples before the surrogate is used (the paper's
        Aquatope setup uses 100).
    rounds:
        Number of BO rounds (paper: 50).
    samples_per_round:
        Configurations sampled per round (paper: 5).
    candidate_pool:
        Number of random candidates scored by expected improvement per round.
    """

    num_dims: int
    objective: Callable[[np.ndarray], float]
    rng: np.random.Generator
    bootstrap: int = 100
    rounds: int = 50
    samples_per_round: int = 5
    candidate_pool: int = 256

    def __post_init__(self) -> None:
        if self.num_dims < 1:
            raise ValueError("num_dims must be >= 1")
        if self.bootstrap < 1:
            raise ValueError("bootstrap must be >= 1")
        if self.rounds < 0:
            raise ValueError("rounds must be >= 0")
        if self.samples_per_round < 1:
            raise ValueError("samples_per_round must be >= 1")

    @staticmethod
    def expected_improvement(mean: np.ndarray, std: np.ndarray, best_y: float) -> np.ndarray:
        """EI of candidate points for a minimisation problem."""
        improvement = best_y - mean
        z = improvement / std
        return improvement * norm.cdf(z) + std * norm.pdf(z)

    def run(self) -> BOResult:
        """Execute the bootstrap + BO rounds and return the best point found."""
        xs = list(self.rng.uniform(0.0, 1.0, size=(self.bootstrap, self.num_dims)))
        ys = [float(self.objective(x)) for x in xs]

        for _ in range(self.rounds):
            gp = GaussianProcess().fit(np.asarray(xs), np.asarray(ys))
            best_y = min(ys)
            candidates = self.rng.uniform(0.0, 1.0, size=(self.candidate_pool, self.num_dims))
            mean, std = gp.predict(candidates)
            ei = self.expected_improvement(mean, std, best_y)
            picks = np.argsort(-ei)[: self.samples_per_round]
            for idx in picks:
                x = candidates[idx]
                xs.append(x)
                ys.append(float(self.objective(x)))

        ys_arr = np.asarray(ys)
        best_idx = int(np.argmin(ys_arr))
        return BOResult(
            best_x=np.asarray(xs[best_idx]),
            best_y=float(ys_arr[best_idx]),
            xs=np.asarray(xs),
            ys=ys_arr,
            evaluations=len(ys),
        )
