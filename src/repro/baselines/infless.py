"""INFless-style scheduling (Yang et al., ASPLOS 2022), as described in
Section 4.2 of the ESG paper.

"InFless schedules jobs by enumerating the configurations for each function
without considering the inter-function relations.  In worker node selection,
a resource efficiency metric is used to maximize the throughput while
reducing resource fragmentation.  InFless provides no method for
distributing an application's SLO to its functions.  Our experiment follows
a prior work to do the distribution based on the average service times of
the functions."

The observed behaviour the paper attributes to INFless — very low stage
latencies at very high resource cost, because the scheduler happily grabs
large configurations to maximise throughput — emerges from the
throughput-maximising configuration choice implemented here.
"""

from __future__ import annotations

from repro.baselines.service_time_slo import service_time_fractions
from repro.cluster.policy_api import AFWQueue, SchedulingContext, SchedulingDecision, SchedulingPolicy
from repro.profiles.configuration import Configuration
from repro.profiles.profiler import ProfileEntry

__all__ = ["INFlessPolicy"]


class INFlessPolicy(SchedulingPolicy):
    """Per-function enumeration maximising throughput under a stage sub-SLO."""

    name = "INFless"
    #: Always reports 0.0 scheduling overhead, so plan timing is skippable.
    deterministic_overhead = True

    def __init__(self, *, candidates: int = 3, resource_weight_vgpu: float = 2.0) -> None:
        """Create the policy.

        Parameters
        ----------
        candidates:
            How many alternative configurations to hand the controller (the
            best by the throughput metric first).
        resource_weight_vgpu:
            Relative weight of a vGPU versus a vCPU in the resource
            efficiency tie-breaker.
        """
        super().__init__()
        if candidates < 1:
            raise ValueError("candidates must be >= 1")
        self.num_candidates = candidates
        self.resource_weight_vgpu = resource_weight_vgpu
        self._fractions: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_bind(self, context: SchedulingContext) -> None:
        """Precompute the service-time SLO fractions of every workflow."""
        self._fractions = {
            name: service_time_fractions(workflow, context.profile_store)
            for name, workflow in context.workflows.items()
        }

    def stage_slo_ms(self, queue: AFWQueue, slo_ms: float) -> float:
        """The share of the end-to-end SLO this stage is allowed to use.

        Note that the fraction is applied to the *original* SLO, not the
        remaining budget: INFless does not adjust later stages when earlier
        stages run late, which is one of the shortcomings the paper studies.
        """
        fractions = self._fractions.get(queue.app_name)
        if fractions is None:
            fractions = service_time_fractions(queue.workflow, self.context.profile_store)
            self._fractions[queue.app_name] = fractions
        return slo_ms * fractions[queue.stage_id]

    # ------------------------------------------------------------------
    # Configuration choice
    # ------------------------------------------------------------------
    def _efficiency(self, entry: ProfileEntry) -> float:
        """Throughput per weighted resource unit (higher is better)."""
        throughput = 1000.0 * entry.config.batch_size / entry.latency_ms
        resources = entry.config.vcpus + self.resource_weight_vgpu * entry.config.vgpus
        return throughput / resources

    def _throughput(self, entry: ProfileEntry) -> float:
        """Jobs per second of a configuration."""
        return 1000.0 * entry.config.batch_size / entry.latency_ms

    def plan(self, queue: AFWQueue, now_ms: float) -> SchedulingDecision | None:
        """Pick the throughput-maximising configuration within the stage sub-SLO."""
        if queue.is_empty:
            return None
        profile = self.context.profile_store.profile(queue.function_name)
        entries = profile.sorted_by_latency(max_batch=len(queue))
        request = queue.oldest_job().request
        stage_slo = self.stage_slo_ms(queue, request.slo_ms)

        feasible = [e for e in entries if e.latency_ms <= stage_slo]
        if not feasible:
            # Nothing meets the stage budget: fall back to the fastest option.
            feasible = [profile.sorted_by_latency(max_batch=len(queue))[0]]
        ranked = sorted(
            feasible,
            key=lambda e: (-self._throughput(e), -self._efficiency(e), e.per_job_cost_cents),
        )
        candidates = [e.config for e in ranked[: self.num_candidates]]
        # A single scan of the profile table: report zero overhead (like
        # Aquatope's lookup) so runs stay deterministic across machines.
        return SchedulingDecision(candidates=candidates, reported_overhead_ms=0.0)

    # ------------------------------------------------------------------
    # Placement: minimise resource fragmentation (best fit)
    # ------------------------------------------------------------------
    def select_invoker(
        self, config: Configuration, queue: AFWQueue, now_ms: float
    ) -> int | None:
        """Choose the fitting node that leaves the least stranded capacity."""
        cluster = self.context.cluster
        total_vcpus = cluster.config.vcpus_per_invoker
        total_vgpus = cluster.config.vgpus_per_invoker
        best = cluster.best_fitting_invoker(
            config,
            key=lambda cpu, gpu: (cpu - config.vcpus) / total_vcpus
            + 2.0 * ((gpu - config.vgpus) / total_vgpus),
        )
        return None if best is None else best.invoker_id
