"""Average-service-time SLO distribution.

INFless and FaST-GShare provide no method for distributing an application's
end-to-end SLO over its stages; the paper follows GrandSLAm and splits the
SLO proportionally to each function's average service time.  The same helper
is shared by both baselines.
"""

from __future__ import annotations

from repro.profiles.profiler import ProfileStore
from repro.workloads.dag import Workflow

__all__ = ["service_time_fractions"]


def service_time_fractions(workflow: Workflow, profile_store: ProfileStore) -> dict[str, float]:
    """Fraction of the end-to-end SLO assigned to each stage.

    The fraction of stage ``i`` is its minimum-configuration execution time
    divided by the sum over all stages, so fractions add up to 1 for any
    workflow (parallel branches simply share the budget proportionally,
    which ignores their overlap — one of the weaknesses the paper points
    out for these baselines).
    """
    minimum = profile_store.space.minimum
    times = {
        sid: profile_store.profile(workflow.function_of(sid)).latency_ms(minimum)
        for sid in workflow.stage_ids()
    }
    total = sum(times.values())
    return {sid: t / total for sid, t in times.items()}
