"""Orion-style scheduling (Mahgoub et al., OSDI 2022), as described in
Section 4.2 of the ESG paper, extended with vGPU support.

"Its scheduling uses best-first search, which creates a priority queue, in
which all new states are added. ... we expand its state definition to a
vector of (batch size, #vCPUs, and #vGPUs), one for each stage.  The
algorithm examines possible states, with each new state increasing the
current state in one dimension of the configuration vector, and the start
state S0 has the minimum values for every stage function.  The scheduling
method decides the schedule for all the stages of an application at the
invocation of the first stage; no dynamic adaptation between stages.  As in
the original work, P95 latency is used as the search goal.  The
configuration with the closest latency to the SLO is returned when the
search exceeds a cut-off time (e.g., 100 ms) before reaching the goal."

The search-time cutoff is modelled as an expansion budget
(``cutoff_ms / per_expansion_ms``) so simulated runs stay fast and the
cutoff can be swept deterministically for Figure 9; the charged scheduling
overhead is the corresponding (simulated) search time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.cluster.policy_api import AFWQueue, SchedulingDecision, SchedulingPolicy
from repro.profiles.configuration import Configuration
from repro.workloads.dag import Workflow

__all__ = ["OrionPolicy", "OrionSearchResult"]


@dataclass
class OrionSearchResult:
    """Outcome of one whole-workflow best-first search."""

    plan: dict[str, Configuration]
    predicted_latency_ms: float
    predicted_cost_cents: float
    expansions: int
    reached_goal: bool
    search_time_ms: float


class OrionPolicy(SchedulingPolicy):
    """Best-first joint-configuration search with a static per-request plan."""

    name = "Orion"

    def __init__(
        self,
        *,
        cutoff_ms: float = 100.0,
        per_expansion_ms: float = 0.05,
        p95_factor: float = 1.08,
        count_search_overhead: bool = True,
        bundling: bool = True,
    ) -> None:
        """Create the policy.

        Parameters
        ----------
        cutoff_ms:
            Search-time budget per whole-workflow search (the paper sweeps
            1 ms - 2000 ms in Figure 9; 100 ms is the default).
        per_expansion_ms:
            Simulated cost of examining one state; the expansion budget is
            ``cutoff_ms / per_expansion_ms``.
        p95_factor:
            Multiplier turning the profile's mean latency into the P95
            latency Orion targets.
        count_search_overhead:
            When False the scheduling overhead reported to the controller is
            zero (the "Orion w/o searching overhead" curve of Figure 9).
        bundling:
            Orion's "bundling" right: after the search settles on a
            configuration vector, the batch size of each stage is grown as
            long as the predicted P95 latency still fits the SLO, lowering
            the per-job cost.  Because the plan is fixed up-front, these
            bundle sizes frequently exceed the queue length when the stage is
            actually scheduled — the pre-planned miss rate of Table 4.
        """
        super().__init__()
        if cutoff_ms <= 0:
            raise ValueError("cutoff_ms must be positive")
        if per_expansion_ms <= 0:
            raise ValueError("per_expansion_ms must be positive")
        if p95_factor < 1.0:
            raise ValueError("p95_factor must be >= 1")
        self.cutoff_ms = cutoff_ms
        self.per_expansion_ms = per_expansion_ms
        self.p95_factor = p95_factor
        self.count_search_overhead = count_search_overhead
        self.bundling = bundling
        self._searches = 0
        #: Cache of search outcomes keyed by (workflow, SLO).  The search is
        #: deterministic, so re-running it for every request would only burn
        #: wall-clock time; the *charged* overhead is still the per-request
        #: search time, exactly as if the search had run again.
        self._search_cache: dict[tuple[str, int], OrionSearchResult] = {}

    # ------------------------------------------------------------------
    # Whole-workflow best-first search
    # ------------------------------------------------------------------
    def search(self, workflow: Workflow, slo_ms: float) -> OrionSearchResult:
        """Search the joint configuration space of ``workflow`` for ``slo_ms``.

        States are vectors of per-stage option indices; the start state is
        all-minimum; each expansion bumps one dimension of one stage.  The
        priority queue is ordered by total per-job cost, so the first state
        whose P95 latency fits the SLO is (approximately) the cheapest
        feasible one.
        """
        store = self.context.profile_store
        space = self.context.config_space
        stage_ids = workflow.topological_order()
        profiles = [store.profile(workflow.function_of(sid)) for sid in stage_ids]
        dims = (space.batch_options, space.vcpu_options, space.vgpu_options)
        dims_max = tuple(len(options) - 1 for options in dims)

        # Precompute per-stage (latency, cost) lookup tables indexed by the
        # option indices, so evaluating a state is a handful of dict reads
        # instead of profile lookups (the search examines tens of thousands
        # of states under large cutoffs).
        stage_tables: list[dict[tuple[int, int, int], tuple[float, float]]] = []
        for profile in profiles:
            table: dict[tuple[int, int, int], tuple[float, float]] = {}
            for bi, b in enumerate(dims[0]):
                for ci, c in enumerate(dims[1]):
                    for gi, g in enumerate(dims[2]):
                        cfg = Configuration(batch_size=b, vcpus=c, vgpus=g)
                        table[(bi, ci, gi)] = (
                            self.p95_factor * profile.latency_ms(cfg),
                            profile.per_job_cost_cents(cfg),
                        )
            stage_tables.append(table)

        def decode(state: tuple[tuple[int, int, int], ...]) -> list[Configuration]:
            return [
                Configuration(
                    batch_size=dims[0][s[0]], vcpus=dims[1][s[1]], vgpus=dims[2][s[2]]
                )
                for s in state
            ]

        def evaluate(state: tuple[tuple[int, int, int], ...]) -> tuple[float, float]:
            latency = 0.0
            cost = 0.0
            for table, s in zip(stage_tables, state):
                lat, c = table[s]
                latency += lat
                cost += c
            return latency, cost

        max_expansions = max(1, int(self.cutoff_ms / self.per_expansion_ms))
        start = tuple((0, 0, 0) for _ in stage_ids)
        start_latency, start_cost = evaluate(start)

        counter = itertools.count()
        heap: list[tuple[float, int, tuple[tuple[int, int, int], ...], float]] = [
            (start_cost, next(counter), start, start_latency)
        ]
        visited: set[tuple[tuple[int, int, int], ...]] = {start}
        best_feasible: tuple[tuple[tuple[int, int, int], ...], float, float] | None = None
        closest: tuple[tuple[tuple[int, int, int], ...], float, float] = (
            start,
            start_latency,
            start_cost,
        )
        expansions = 0

        while heap and expansions < max_expansions:
            cost, _, state, latency = heapq.heappop(heap)
            expansions += 1
            if abs(latency - slo_ms) < abs(closest[1] - slo_ms):
                closest = (state, latency, cost)
            if latency <= slo_ms:
                best_feasible = (state, latency, cost)
                break
            for stage_idx in range(len(stage_ids)):
                for dim in range(3):
                    if state[stage_idx][dim] >= dims_max[dim]:
                        continue
                    new_stage = list(state[stage_idx])
                    new_stage[dim] += 1
                    new_state = state[:stage_idx] + (tuple(new_stage),) + state[stage_idx + 1 :]
                    if new_state in visited:
                        continue
                    visited.add(new_state)
                    new_latency, new_cost = evaluate(new_state)
                    heapq.heappush(heap, (new_cost, next(counter), new_state, new_latency))

        reached_goal = best_feasible is not None
        chosen = best_feasible if best_feasible is not None else closest
        state, latency, cost = chosen
        if self.bundling and reached_goal:
            state, latency, cost = self._bundle(state, slo_ms, evaluate, dims_max)
        plan = dict(zip(stage_ids, decode(state)))
        search_time_ms = min(self.cutoff_ms, expansions * self.per_expansion_ms)
        self._searches += 1
        return OrionSearchResult(
            plan=plan,
            predicted_latency_ms=latency,
            predicted_cost_cents=cost,
            expansions=expansions,
            reached_goal=reached_goal,
            search_time_ms=search_time_ms,
        )

    @staticmethod
    def _bundle(state, slo_ms, evaluate, dims_max):
        """Grow each stage's batch while the predicted latency still fits the SLO."""
        latency, cost = evaluate(state)
        changed = True
        while changed:
            changed = False
            for stage_idx in range(len(state)):
                if state[stage_idx][0] >= dims_max[0]:
                    continue
                bumped_stage = (state[stage_idx][0] + 1,) + state[stage_idx][1:]
                candidate = state[:stage_idx] + (bumped_stage,) + state[stage_idx + 1 :]
                cand_latency, cand_cost = evaluate(candidate)
                if cand_latency <= slo_ms and cand_cost <= cost:
                    state, latency, cost = candidate, cand_latency, cand_cost
                    changed = True
        return state, latency, cost

    # ------------------------------------------------------------------
    # SchedulingPolicy interface
    # ------------------------------------------------------------------
    def plan(self, queue: AFWQueue, now_ms: float) -> SchedulingDecision | None:
        """Return the pre-planned configuration of the queue's stage."""
        if queue.is_empty:
            return None
        request = queue.oldest_job().request
        overhead = 0.0
        if request.static_plan is None:
            cache_key = (request.workflow.name, int(round(request.slo_ms)))
            result = self._search_cache.get(cache_key)
            if result is None:
                result = self.search(request.workflow, request.slo_ms)
                self._search_cache[cache_key] = result
            request.static_plan = dict(result.plan)
            overhead = result.search_time_ms

        planned = request.static_plan.get(queue.stage_id)
        if planned is None:
            return None
        miss = planned.batch_size > len(queue)
        if miss:
            request.plan_miss_count += 1
            planned = planned.with_batch(max(1, len(queue)))
        reported = overhead if self.count_search_overhead else 0.0
        return SchedulingDecision(
            candidates=[planned],
            planned_path=dict(request.static_plan),
            used_preplanned=True,
            plan_miss=miss,
            reported_overhead_ms=reported,
        )

    def on_bind(self, context) -> None:
        """Clear the search cache (profiles may differ between runs)."""
        self._search_cache.clear()

    @property
    def searches_performed(self) -> int:
        """Number of distinct whole-workflow searches actually executed."""
        return self._searches
