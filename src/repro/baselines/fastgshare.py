"""FaST-GShare-style scheduling (Gu et al., 2023), as described in
Section 4.2 of the ESG paper.

"This work uses FaST-Manager to manage spatio-temporal resources for GPU
multiplexing.  It also employs an enumeration-based scheduling algorithm
which enumerates the configurations based on throughput performance metrics.
Its node selection tries to minimize GPU resource fragmentation.  It offers
no method for distributing an application's SLO either."

Compared with INFless, FaST-GShare squeezes more sharing out of each GPU
(its metric is throughput *per vGPU*), which keeps its cost lower but makes
its stages slower — the behaviour Figure 7 shows as the highest latencies
with frequent spikes.
"""

from __future__ import annotations

from repro.baselines.service_time_slo import service_time_fractions
from repro.cluster.policy_api import AFWQueue, SchedulingContext, SchedulingDecision, SchedulingPolicy
from repro.profiles.configuration import Configuration
from repro.profiles.profiler import ProfileEntry

__all__ = ["FaSTGSharePolicy"]


class FaSTGSharePolicy(SchedulingPolicy):
    """Per-function enumeration maximising throughput per vGPU."""

    name = "FaST-GShare"
    #: Always reports 0.0 scheduling overhead, so plan timing is skippable.
    deterministic_overhead = True

    def __init__(self, *, candidates: int = 3) -> None:
        """Create the policy.

        Parameters
        ----------
        candidates:
            Number of alternative configurations handed to the controller.
        """
        super().__init__()
        if candidates < 1:
            raise ValueError("candidates must be >= 1")
        self.num_candidates = candidates
        self._fractions: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_bind(self, context: SchedulingContext) -> None:
        """Precompute the service-time SLO fractions of every workflow."""
        self._fractions = {
            name: service_time_fractions(workflow, context.profile_store)
            for name, workflow in context.workflows.items()
        }

    def stage_slo_ms(self, queue: AFWQueue, slo_ms: float) -> float:
        """Static per-stage share of the end-to-end SLO (no adaptation)."""
        fractions = self._fractions.get(queue.app_name)
        if fractions is None:
            fractions = service_time_fractions(queue.workflow, self.context.profile_store)
            self._fractions[queue.app_name] = fractions
        return slo_ms * fractions[queue.stage_id]

    # ------------------------------------------------------------------
    # Configuration choice
    # ------------------------------------------------------------------
    def _gpu_efficiency(self, entry: ProfileEntry) -> float:
        """Throughput per vGPU (higher means better GPU multiplexing)."""
        throughput = 1000.0 * entry.config.batch_size / entry.latency_ms
        return throughput / entry.config.vgpus

    def plan(self, queue: AFWQueue, now_ms: float) -> SchedulingDecision | None:
        """Pick the configuration with the best throughput-per-vGPU within the sub-SLO."""
        if queue.is_empty:
            return None
        profile = self.context.profile_store.profile(queue.function_name)
        entries = profile.sorted_by_latency(max_batch=len(queue))
        request = queue.oldest_job().request
        stage_slo = self.stage_slo_ms(queue, request.slo_ms)

        feasible = [e for e in entries if e.latency_ms <= stage_slo]
        if not feasible:
            feasible = [entries[0]]
        ranked = sorted(
            feasible,
            key=lambda e: (-self._gpu_efficiency(e), e.per_job_cost_cents, e.latency_ms),
        )
        candidates = [e.config for e in ranked[: self.num_candidates]]
        # A single scan of the profile table: report zero overhead (like
        # Aquatope's lookup) so runs stay deterministic across machines.
        return SchedulingDecision(candidates=candidates, reported_overhead_ms=0.0)

    # ------------------------------------------------------------------
    # Placement: minimise GPU fragmentation
    # ------------------------------------------------------------------
    def select_invoker(
        self, config: Configuration, queue: AFWQueue, now_ms: float
    ) -> int | None:
        """Pack the GPU as tightly as possible (fewest leftover vGPUs)."""
        cluster = self.context.cluster
        best = cluster.best_fitting_invoker(
            config,
            key=lambda cpu, gpu: (gpu - config.vgpus, cpu - config.vcpus),
        )
        return None if best is None else best.invoker_id
