"""Aquatope-style scheduling (Zhou et al., ASPLOS 2023), as described in
Section 4.2 of the ESG paper, extended with vGPU support.

"Aquatope relies on an offline training process, in which the application of
interest is profiled in many sample executions based on Bayesian
Optimization (BO), through which it builds up a performance model and learns
about the statistically good configurations for every stage in the
application. ... the training process starts with 100 bootstrapping samples,
iterates 50 rounds (we sample five configurations in each round), and
selects the best configuration.  The nature of its reliance on offline
training makes it unable to adapt to dynamic workload changes."

The BO objective minimises the workflow's total per-job cost with a penalty
for exceeding the SLO, evaluated against noisy samples of the performance
profiles (emulating the sample executions of the offline phase).  The
resulting per-stage configurations are *static*: every request of the
application reuses them, which is exactly why Table 4 reports a high
configuration miss rate for this baseline.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.bo import BayesianOptimizer
from repro.cluster.policy_api import AFWQueue, SchedulingContext, SchedulingDecision, SchedulingPolicy
from repro.profiles.configuration import Configuration
from repro.utils.rng import derive_rng
from repro.workloads.dag import Workflow

__all__ = ["AquatopePolicy"]


class AquatopePolicy(SchedulingPolicy):
    """Offline-BO-trained static per-stage configurations."""

    name = "Aquatope"
    #: Always reports 0.0 scheduling overhead, so plan timing is skippable.
    deterministic_overhead = True

    def __init__(
        self,
        *,
        bootstrap: int = 100,
        rounds: int = 50,
        samples_per_round: int = 5,
        latency_penalty: float = 10.0,
        sample_noise_sigma: float = 0.05,
        seed: int = 1234,
    ) -> None:
        """Create the policy.

        Parameters
        ----------
        bootstrap / rounds / samples_per_round:
            The BO training protocol (defaults follow the paper).
        latency_penalty:
            Weight of the SLO-violation penalty in the training objective
            (relative exceedance of the SLO times this weight, added to the
            per-job cost).
        sample_noise_sigma:
            Noise applied to profile latencies when emulating the offline
            sample executions.
        seed:
            Seed of the training randomness (independent of the simulation
            seed, as training happens offline).
        """
        super().__init__()
        self.bootstrap = bootstrap
        self.rounds = rounds
        self.samples_per_round = samples_per_round
        self.latency_penalty = latency_penalty
        self.sample_noise_sigma = sample_noise_sigma
        self.seed = seed
        #: Trained plans keyed by (application, rounded SLO).
        self._plans: dict[tuple[str, int], dict[str, Configuration]] = {}

    # ------------------------------------------------------------------
    # Offline training
    # ------------------------------------------------------------------
    def _decode(self, x: np.ndarray, num_stages: int) -> list[Configuration]:
        """Map a point of the unit hypercube to per-stage configurations."""
        space = self.context.config_space
        dims = (space.batch_options, space.vcpu_options, space.vgpu_options)
        configs: list[Configuration] = []
        for stage in range(num_stages):
            values = []
            for dim in range(3):
                options = dims[dim]
                idx = min(len(options) - 1, int(x[3 * stage + dim] * len(options)))
                values.append(options[idx])
            configs.append(Configuration(batch_size=values[0], vcpus=values[1], vgpus=values[2]))
        return configs

    def train(self, workflow: Workflow, slo_ms: float) -> dict[str, Configuration]:
        """Run the offline BO training for one application and SLO."""
        store = self.context.profile_store
        stage_ids = workflow.topological_order()
        profiles = [store.profile(workflow.function_of(sid)) for sid in stage_ids]
        rng = derive_rng(self.seed, "aquatope", workflow.name, str(int(slo_ms)))

        def objective(x: np.ndarray) -> float:
            configs = self._decode(x, len(stage_ids))
            latency = 0.0
            cost = 0.0
            for profile, config in zip(profiles, configs):
                noise = 1.0 + float(rng.normal(0.0, self.sample_noise_sigma))
                latency += profile.latency_ms(config) * max(0.5, noise)
                cost += profile.per_job_cost_cents(config)
            violation = max(0.0, (latency - slo_ms) / slo_ms)
            return cost + self.latency_penalty * violation

        optimizer = BayesianOptimizer(
            num_dims=3 * len(stage_ids),
            objective=objective,
            rng=rng,
            bootstrap=self.bootstrap,
            rounds=self.rounds,
            samples_per_round=self.samples_per_round,
        )
        result = optimizer.run()
        configs = self._decode(result.best_x, len(stage_ids))
        return dict(zip(stage_ids, configs))

    def plan_for(self, workflow: Workflow, slo_ms: float) -> dict[str, Configuration]:
        """Return (training on first use) the static plan for an application."""
        key = (workflow.name, int(round(slo_ms)))
        if key not in self._plans:
            self._plans[key] = self.train(workflow, slo_ms)
        return self._plans[key]

    def on_bind(self, context: SchedulingContext) -> None:
        """Reset any previously trained plans (contexts differ between runs)."""
        self._plans.clear()

    # ------------------------------------------------------------------
    # SchedulingPolicy interface
    # ------------------------------------------------------------------
    def plan(self, queue: AFWQueue, now_ms: float) -> SchedulingDecision | None:
        """Look up the trained static configuration of the queue's stage."""
        if queue.is_empty:
            return None
        request = queue.oldest_job().request
        trained = self.plan_for(request.workflow, request.slo_ms)
        if request.static_plan is None:
            request.static_plan = dict(trained)
        planned = request.static_plan.get(queue.stage_id)
        if planned is None:
            return None
        miss = planned.batch_size > len(queue)
        if miss:
            request.plan_miss_count += 1
            planned = planned.with_batch(max(1, len(queue)))
        # "Aquatope ... has negligible scheduling overhead" — the lookup is
        # charged as zero; training happens offline.
        return SchedulingDecision(
            candidates=[planned],
            planned_path=dict(request.static_plan),
            used_preplanned=True,
            plan_miss=miss,
            reported_overhead_ms=0.0,
        )
