"""Command-line driver for the determinism linter.

Reached two ways: ``esg-repro lint ...`` (the subcommand delegates here)
and ``python -m repro.analysis ...`` (standalone, importable without the
simulator).  Exit code 0 means the tree honors the byte-identity contract
(modulo justified suppressions and the baseline); 1 means violations or a
stale baseline; 2 means usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.engine import (
    LintConfig,
    analyze_paths,
    format_json,
    format_text,
)
from repro.analysis.rules import RULES

__all__ = ["build_lint_parser", "main", "run_lint"]

#: Default scan root: the package sources, resolved relative to this file so
#: the linter works from any working directory of a source checkout.
DEFAULT_TARGET = Path(__file__).resolve().parents[2] / "repro"

#: Default baseline location, next to the package sources.
DEFAULT_BASELINE = Path(__file__).resolve().parents[3] / "lint-baseline.json"


def build_lint_parser(parser: argparse.ArgumentParser | None = None) -> argparse.ArgumentParser:
    """Add the lint options to ``parser`` (or a fresh standalone parser)."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="python -m repro.analysis",
            description="AST-based determinism linter enforcing the "
            "byte-identity contract (see docs/determinism.md).",
        )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files or directories to analyze (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="report format (json is the CI artifact schema)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        nargs="?",
        const=DEFAULT_BASELINE,
        default=None,
        metavar="PATH",
        help="apply a baseline file: grandfathered violations pass, but "
        "entries that no longer match fail (the ratchet); with no PATH, "
        f"uses {DEFAULT_BASELINE.name} next to the package",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        metavar="PATH",
        help="write a baseline grandfathering every current violation, then "
        "exit 0 (adoption entry point; the ratchet applies from then on)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def render_rule_list() -> str:
    lines = ["The determinism rule catalog (docs/determinism.md has worked examples):"]
    for rule in RULES:
        layer = "  [layered: skipped in the CLI/benchmark layer]" if rule.layered else ""
        lines.append(f"  {rule.code}  {rule.name:<16} {rule.summary}{layer}")
    return "\n".join(lines)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    if args.list_rules:
        print(render_rule_list())
        return 0

    paths = args.paths or [DEFAULT_TARGET]
    missing = [str(path) for path in paths if not Path(path).exists()]
    if missing:
        print(f"esg-repro lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = tuple(code.strip() for code in args.select.split(",") if code.strip())
    try:
        config = LintConfig(select=select)
        config.active_rules()  # validate --select eagerly
    except ValueError as error:
        print(f"esg-repro lint: {error}", file=sys.stderr)
        return 2

    baseline = None
    if args.baseline is not None and args.write_baseline is None:
        if not args.baseline.exists():
            print(
                f"esg-repro lint: baseline {args.baseline} does not exist "
                "(create one with --write-baseline)",
                file=sys.stderr,
            )
            return 2
        baseline = Baseline.load(args.baseline)

    report = analyze_paths(paths, config=config, baseline=baseline)

    if args.write_baseline is not None:
        new_baseline = Baseline.from_violations(report.violations)
        new_baseline.save(args.write_baseline)
        print(
            f"wrote baseline {args.write_baseline} grandfathering "
            f"{sum(entry.count for entry in new_baseline.entries)} violation(s)"
        )
        return 0

    print(format_json(report) if args.fmt == "json" else format_text(report))
    return report.exit_code


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.analysis``)."""
    parser = build_lint_parser()
    args = parser.parse_args(argv)
    return run_lint(args)
