"""Static analysis enforcing the byte-identity determinism contract.

Every guarantee this reproduction makes — parity across ``loop_mode``
fast/compat, ``index_mode`` indexed/scan, ``n_jobs`` 1/N, spawn contexts,
and PYTHONHASHSEED — depends on the codebase staying free of a small set
of nondeterminism hazards.  This package is the compiler pass that keeps
it that way: a stdlib-``ast`` analyzer with a named rule catalog
(REP001..REP008), justified inline suppressions, and a ratcheted baseline.

Run it as ``esg-repro lint`` or ``python -m repro.analysis``; the full
contract and rule catalog are documented in ``docs/determinism.md``.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, match_baseline
from repro.analysis.context import ModuleContext
from repro.analysis.engine import (
    DEFAULT_LAYER_ALLOWLIST,
    LintConfig,
    LintReport,
    analyze_path,
    analyze_paths,
    analyze_source,
    format_json,
    format_text,
)
from repro.analysis.rules import META_RULE_CODE, RULES, rule_codes
from repro.analysis.suppressions import Suppression, parse_suppressions
from repro.analysis.violations import Finding, Rule, Violation

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_LAYER_ALLOWLIST",
    "Finding",
    "LintConfig",
    "LintReport",
    "META_RULE_CODE",
    "ModuleContext",
    "RULES",
    "Rule",
    "Suppression",
    "Violation",
    "analyze_path",
    "analyze_paths",
    "analyze_source",
    "format_json",
    "format_text",
    "match_baseline",
    "parse_suppressions",
    "rule_codes",
]
