"""Inline suppression comments: ``# repro: allow[REP004] justification``.

A suppression names one or more rule codes and MUST carry a justification —
the contract is that every intentional nondeterminism hazard documents why
it is safe.  A bare ``# repro: allow[REP004]`` is itself a violation
(:data:`repro.analysis.rules.META_RULE_CODE`) and suppresses nothing.

Placement: a suppression on a code line covers violations reported on that
line; a suppression on a comment-only line covers the next code line (the
common style for long statements).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "parse_suppressions"]

#: Matches a hash comment carrying ``repro: allow[CODE, ...] reason`` (the
#: marker is spelled without its leading hash here so this comment does not
#: register as a suppression itself).
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<codes>[^\]]*)\]\s*(?P<justification>.*)$"
)
_CODE_RE = re.compile(r"^REP\d{3}$")


@dataclass
class Suppression:
    """One parsed suppression comment."""

    line: int  # line the comment physically sits on (1-based)
    target_line: int  # line whose violations it covers
    codes: tuple[str, ...]
    justification: str
    malformed: str = ""  # non-empty: why the suppression is invalid
    used: bool = field(default=False, compare=False)

    def covers(self, code: str, line: int) -> bool:
        """Whether this (well-formed) suppression silences ``code`` at ``line``."""
        return not self.malformed and line == self.target_line and code in self.codes


def _is_comment_only(line: str) -> bool:
    stripped = line.strip()
    return stripped.startswith("#")


def _comment_lines(source_lines: list[str]) -> list[tuple[int, str]]:
    """(line_number, comment_text) for every real comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps markers inside
    string literals and docstrings — e.g. the examples in this very module —
    from registering as suppressions.  If the file does not tokenize, fall
    back to the line scan: the analyzer wants suppressions even from files
    it cannot fully parse.
    """
    source = "\n".join(source_lines) + "\n"
    try:
        return [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(source).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [
            (index, raw)
            for index, raw in enumerate(source_lines, start=1)
            if "#" in raw
        ]


def parse_suppressions(source_lines: list[str]) -> list[Suppression]:
    """Extract every suppression comment from a module's comment tokens."""
    suppressions: list[Suppression] = []
    for index, comment in _comment_lines(source_lines):
        match = _SUPPRESSION_RE.search(comment)
        if match is None:
            continue
        raw = source_lines[index - 1] if index <= len(source_lines) else comment
        codes = tuple(
            code.strip() for code in match.group("codes").split(",") if code.strip()
        )
        justification = match.group("justification").strip()
        malformed = ""
        if not codes:
            malformed = "suppression lists no rule codes"
        else:
            bad = [code for code in codes if not _CODE_RE.match(code)]
            if bad:
                malformed = f"unknown rule code(s) {', '.join(bad)} (expected REPnnn)"
        if not malformed and not justification:
            malformed = (
                "suppression has no justification (a reason is mandatory: "
                "# repro: allow[CODE] <why this is safe>)"
            )
        target_line = index
        if _is_comment_only(raw):
            # Standalone comment: covers the next non-blank, non-comment line.
            target_line = index
            for offset, later in enumerate(source_lines[index:], start=index + 1):
                stripped = later.strip()
                if stripped and not stripped.startswith("#"):
                    target_line = offset
                    break
        suppressions.append(
            Suppression(
                line=index,
                target_line=target_line,
                codes=codes,
                justification=justification,
                malformed=malformed,
            )
        )
    return suppressions
