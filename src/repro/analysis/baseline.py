"""Baseline file: adopt the linter incrementally, but ratcheted.

A baseline entry grandfathers existing violations by *content* — rule code,
path, and the stripped source line — never by line number, so unrelated
edits do not churn it.  Matching is strict both ways:

- a violation not covered by the baseline fails the lint (new debt is
  rejected), and
- a baseline entry matching fewer violations than its ``count`` is *stale*
  and fails the lint too (paid-off debt must be deleted from the baseline —
  the ratchet only ever tightens).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.violations import Violation

__all__ = ["Baseline", "BaselineEntry", "match_baseline"]

BASELINE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered violation site."""

    rule: str
    path: str
    snippet: str
    count: int = 1

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.snippet)


@dataclass
class Baseline:
    """The parsed baseline file."""

    entries: list[BaselineEntry]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        document = json.loads(path.read_text())
        if document.get("version") != BASELINE_SCHEMA_VERSION:
            raise ValueError(
                f"baseline {path}: unsupported version {document.get('version')!r} "
                f"(expected {BASELINE_SCHEMA_VERSION})"
            )
        entries = [
            BaselineEntry(
                rule=str(entry["rule"]),
                path=str(entry["path"]),
                snippet=str(entry["snippet"]),
                count=int(entry.get("count", 1)),
            )
            for entry in document.get("entries", [])
        ]
        return cls(entries=entries)

    @classmethod
    def from_violations(cls, violations: list[Violation]) -> "Baseline":
        """Build the baseline that grandfathers exactly ``violations``."""
        counts: Counter[tuple[str, str, str]] = Counter(
            (violation.rule, violation.path, violation.snippet)
            for violation in violations
            if not violation.suppressed
        )
        entries = [
            BaselineEntry(rule=rule, path=path, snippet=snippet, count=count)
            for (rule, path, snippet), count in sorted(counts.items())
        ]
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        document = {
            "version": BASELINE_SCHEMA_VERSION,
            "entries": [
                {
                    "rule": entry.rule,
                    "path": entry.path,
                    "snippet": entry.snippet,
                    "count": entry.count,
                }
                for entry in self.entries
            ],
        }
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def match_baseline(
    violations: list[Violation], baseline: Baseline
) -> tuple[list[Violation], list[BaselineEntry]]:
    """Mark baselined violations; report stale entries.

    Returns ``(violations, stale_entries)`` where ``violations`` is a new
    list with ``baselined=True`` set on matched items (suppressed violations
    never consume baseline budget) and ``stale_entries`` lists baseline
    entries whose remaining ``count`` found no matching violation.
    """
    budget: Counter[tuple[str, str, str]] = Counter()
    for entry in baseline.entries:
        budget[entry.key()] += entry.count

    matched: list[Violation] = []
    for violation in violations:
        key = (violation.rule, violation.path, violation.snippet)
        if not violation.suppressed and budget.get(key, 0) > 0:
            budget[key] -= 1
            matched.append(
                Violation(
                    rule=violation.rule,
                    path=violation.path,
                    line=violation.line,
                    col=violation.col,
                    message=violation.message,
                    snippet=violation.snippet,
                    suppressed=violation.suppressed,
                    justification=violation.justification,
                    baselined=True,
                )
            )
        else:
            matched.append(violation)

    stale = [
        BaselineEntry(rule=rule, path=path, snippet=snippet, count=count)
        for (rule, path, snippet), count in sorted(budget.items())
        if count > 0
    ]
    return matched, stale
