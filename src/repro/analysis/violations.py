"""Core data types for the determinism linter.

A :class:`Rule` is a named, documented check; a :class:`Violation` is one
concrete hit of a rule at a source location.  Rules yield plain
``(node, message)`` findings — the engine turns them into violations,
applies inline suppressions and the baseline, and decides what fails.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.analysis.context import ModuleContext

__all__ = ["Finding", "Rule", "Violation"]


@dataclass(frozen=True)
class Finding:
    """A raw rule hit: an AST node plus a human-readable message."""

    node: ast.AST
    message: str


@dataclass(frozen=True)
class Rule:
    """A named determinism check.

    Attributes
    ----------
    code:
        Stable identifier (``REP001`` ...), used in suppressions, the
        baseline and reports.
    name:
        Short slug, e.g. ``wall-clock``.
    summary:
        One-line description shown in ``--list-rules`` and reports.
    check:
        Generator inspecting a parsed module and yielding findings.
    layered:
        Whether the rule respects the layer allowlist: wall-clock reads,
        global RNG and environment reads are legitimate in the benchmark /
        CLI layer, so files matching the allowlist skip these rules.
    """

    code: str
    name: str
    summary: str
    check: Callable[["ModuleContext"], Iterator[Finding]]
    layered: bool = False


@dataclass(frozen=True)
class Violation:
    """One rule hit at a concrete source location.

    ``suppressed`` marks hits covered by a justified inline
    ``# repro: allow[...]`` comment; ``baselined`` marks hits matched by a
    baseline entry.  Only violations with neither flag fail the lint.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    suppressed: bool = False
    justification: str = ""
    baselined: bool = field(default=False, compare=False)

    @property
    def is_failure(self) -> bool:
        """True when this violation should fail the lint run."""
        return not self.suppressed and not self.baselined

    def location(self) -> str:
        """``path:line:col`` (1-based column, editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_json(self) -> dict[str, object]:
        """JSON-ready representation used by ``--format json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
            "justification": self.justification,
            "baselined": self.baselined,
        }
