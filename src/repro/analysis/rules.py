"""The determinism rule catalog (REP001..REP008).

Every rule targets one concrete way the byte-identity contract has broken
(or could break) in this codebase: results must be a pure function of
``(spec, seed)`` — identical across ``loop_mode`` fast/compat,
``index_mode`` indexed/scan, ``n_jobs`` 1/N, spawn contexts, and any
PYTHONHASHSEED.  See ``docs/determinism.md`` for the catalog with worked
examples; the authoritative behavior spec is the corpus under
``tests/analysis/corpus/``.

Rules are heuristic by design: they resolve names through import aliases
and do lightweight local type inference, but they do not chase values
across modules.  False positives are handled by the justified-suppression
workflow, never by weakening a rule silently.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.violations import Finding, Rule

__all__ = ["META_RULE_CODE", "RULES", "rule_codes"]

#: Pseudo-rule for malformed / unused suppression comments.  It is not an
#: analysis of the code itself, so it lives outside the REP001.. catalog,
#: cannot be suppressed, and is never baselined away silently.
META_RULE_CODE = "REP000"


# ----------------------------------------------------------------------
# REP001: wall-clock reads

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def check_wall_clock(ctx: ModuleContext) -> Iterator[Finding]:
    """REP001: simulated time must come from the event loop, never the host.

    PR 1's first cross-process nondeterminism was exactly this: ESG measured
    its plan-search wall time and fed it back into the simulation as
    scheduling overhead, so every run's timeline depended on host load.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve_call(node)
        if resolved in _WALL_CLOCK:
            yield Finding(
                node,
                f"wall-clock read {resolved}() in simulation code: results must "
                "be a pure function of (spec, seed); model elapsed time "
                "deterministically or move this to the benchmark/CLI layer",
            )


# ----------------------------------------------------------------------
# REP002: builtin hash()/id() flowing into keys, seeds or sort keys

_SEED_SINKS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.seed",
        "numpy.random.RandomState",
        "random.seed",
        "random.Random",
        "repro.utils.rng.derive_rng",
        "derive_rng",
    }
)
_TAINTED_NAME_PARTS = ("key", "seed", "entropy")


def _name_is_tainted(name: str) -> bool:
    lowered = name.lower()
    return any(part in lowered for part in _TAINTED_NAME_PARTS)


def check_hash_id_in_keys(ctx: ModuleContext) -> Iterator[Finding]:
    """REP002: ``hash()`` is PYTHONHASHSEED-salted and ``id()`` is a heap address.

    Neither survives a process boundary, so anything derived from them —
    cache keys, RNG seeds, sort keys, dict keys — silently differs between
    a parent and its spawned workers (the ``derive_rng`` bug PR 1 fixed).
    """
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("hash", "id")
            and node.func.id not in ctx.imports  # shadowed by an import: not builtin
        ):
            continue
        builtin = node.func.id
        context = _hash_flow_context(ctx, node)
        if context is not None:
            yield Finding(
                node,
                f"builtin {builtin}() flows into {context}: it is not stable "
                "across processes (PYTHONHASHSEED / heap layout); derive the "
                "value from stable bytes instead (e.g. hashlib.blake2s)",
            )


def _hash_flow_context(ctx: ModuleContext, call: ast.Call) -> str | None:
    """Classify where a hash()/id() value ends up, or ``None`` if harmless."""
    previous: ast.AST = call
    for ancestor in ctx.ancestors(call):
        if isinstance(ancestor, ast.keyword):
            if ancestor.arg in ("key", "seed"):
                return f"a {ancestor.arg}= argument"
        elif isinstance(ancestor, ast.Call):
            resolved = ctx.resolve_call(ancestor)
            if resolved in _SEED_SINKS:
                return f"RNG seeding ({resolved})"
        elif isinstance(ancestor, ast.Dict):
            if previous in ancestor.keys:
                return "a dict key"
        elif isinstance(ancestor, ast.Subscript):
            if previous is ancestor.slice:
                return "a subscript key"
        elif isinstance(ancestor, (ast.Set, ast.SetComp)):
            return "a set element"
        elif isinstance(ancestor, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                ancestor.targets
                if isinstance(ancestor, ast.Assign)
                else [ancestor.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and _name_is_tainted(target.id):
                    return f"variable {target.id!r}"
            return None
        elif isinstance(ancestor, ast.Return):
            function = ctx.enclosing_function(ancestor)
            if (
                function is not None
                and function.name != "__hash__"  # in-process protocol, legitimate
                and (_name_is_tainted(function.name) or "hash" in function.name.lower())
            ):
                return f"the return value of {function.name}()"
            return None
        elif isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            return None
        previous = ancestor
    return None


# ----------------------------------------------------------------------
# REP003: unseeded / global RNG state

_RANDOM_MODULE_FUNCS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
    }
)
_NUMPY_RANDOM_FUNCS = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "gamma", "geometric", "gumbel", "laplace", "logistic",
        "lognormal", "multinomial", "multivariate_normal", "normal",
        "permutation", "poisson", "rand", "randint", "randn", "random",
        "random_integers", "random_sample", "ranf", "rayleigh", "sample",
        "seed", "shuffle", "standard_cauchy", "standard_exponential",
        "standard_gamma", "standard_normal", "standard_t", "triangular",
        "uniform", "vonmises", "wald", "weibull", "zipf",
    }
)


def check_global_rng(ctx: ModuleContext) -> Iterator[Finding]:
    """REP003: module-level RNG state is shared, unseeded, and order-dependent.

    Simulation code must draw from a :class:`numpy.random.Generator` handed
    down from ``derive_rng(seed, ...)``.  ``random.random()`` /
    ``np.random.normal()`` read hidden global state seeded from the OS, and
    even explicit ``random.seed(n)`` is a process-wide mutation that breaks
    under worker reuse.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve_call(node)
        if resolved is None:
            continue
        hazard: str | None = None
        if resolved.startswith("random.") and resolved.split(".", 1)[1] in _RANDOM_MODULE_FUNCS:
            hazard = f"{resolved}() uses the process-global random state"
        elif (
            resolved.startswith("numpy.random.")
            and resolved.rsplit(".", 1)[1] in _NUMPY_RANDOM_FUNCS
        ):
            hazard = f"{resolved}() uses numpy's legacy global RNG state"
        elif resolved == "numpy.random.default_rng" and not node.args and not node.keywords:
            hazard = "numpy.random.default_rng() without a seed draws OS entropy"
        elif resolved == "random.Random" and not node.args and not node.keywords:
            hazard = "random.Random() without a seed draws OS entropy"
        if hazard is not None:
            yield Finding(
                node,
                f"{hazard}; pass a Generator derived via derive_rng(seed, ...) instead",
            )


# ----------------------------------------------------------------------
# REP004: order-sensitive iteration over sets

_EVENT_SINK_NAMES = frozenset(
    {
        "add_event", "append", "appendleft", "emit", "extend", "publish",
        "push", "push_event", "put", "record", "schedule", "send", "write",
    }
)


def _is_set_expr(ctx: ModuleContext, node: ast.AST, local_sets: set[str]) -> bool:
    """Whether ``node`` syntactically produces a set/frozenset (or is one).

    ``local_sets`` holds plain names inferred as sets plus ``"self.X"``
    entries for set-typed attributes of the enclosing class.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in local_sets
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}" in local_sets
    if isinstance(node, ast.Call):
        resolved = ctx.resolve_call(node)
        if resolved in ("set", "frozenset"):
            return True
        # set algebra keeps set-ness: s.union(...), s.intersection(...), ...
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference", "copy"
        ):
            return _is_set_expr(ctx, node.func.value, local_sets)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(ctx, node.left, local_sets) or _is_set_expr(
            ctx, node.right, local_sets
        )
    return False


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function definitions.

    Each function is analyzed as its own scope with its own local set
    inference; the module scope must not see a function's locals (and vice
    versa), or same-named variables would cross-contaminate.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _annotation_is_set(ctx: ModuleContext, annotation: ast.AST) -> bool:
    """Whether a type annotation declares a set (incl. ``set[...] | None``)."""
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(ctx, annotation.value)
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _annotation_is_set(ctx, annotation.left) or _annotation_is_set(
            ctx, annotation.right
        )
    resolved = ctx.resolve(annotation)
    return resolved in (
        "set", "frozenset", "typing.Set", "typing.FrozenSet", "Set", "FrozenSet",
        "typing.AbstractSet", "AbstractSet",
    )


def _class_set_attributes(ctx: ModuleContext, class_def: ast.ClassDef) -> set[str]:
    """``self.X`` attribute names declared or assigned as sets in a class."""
    attrs: set[str] = set()
    for stmt in class_def.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if _annotation_is_set(ctx, stmt.annotation):
                attrs.add(f"self.{stmt.target.id}")
    for node in ast.walk(class_def):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                declared = isinstance(node, ast.AnnAssign) and _annotation_is_set(
                    ctx, node.annotation
                )
                if declared or (value is not None and _is_set_expr(ctx, value, attrs)):
                    attrs.add(f"self.{target.attr}")
    return attrs


def _collect_local_sets(ctx: ModuleContext, scope: ast.AST) -> set[str]:
    """Names assigned a set-valued expression anywhere in ``scope``.

    Flow-insensitive on purpose: a name that ever holds a set is treated as
    a set.  Reassigning ``items = sorted(items)`` introduces a new name in
    well-factored code; when it does not, a justified suppression documents
    the reasoning.
    """
    local_sets: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        enclosing_class = ctx.enclosing_class(scope)
        if enclosing_class is not None:
            local_sets |= _class_set_attributes(ctx, enclosing_class)
    # Iterate to a fixpoint so chains (`a = set(); b = a | other`) resolve.
    for _ in range(3):
        before = len(local_sets)
        for node in _walk_scope(scope):
            if isinstance(node, ast.Assign):
                if _is_set_expr(ctx, node.value, local_sets):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_sets.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_set_expr(ctx, node.value, local_sets) and isinstance(
                    node.target, ast.Name
                ):
                    local_sets.add(node.target.id)
        if len(local_sets) == before:
            break
    return local_sets


def _body_is_order_sensitive(body: list[ast.stmt]) -> str | None:
    """Why a loop body depends on iteration order, or ``None``."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                return "accumulates with an augmented assignment (float sums reorder)"
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields values in iteration order"
            if isinstance(node, ast.Call):
                name = None
                if isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                elif isinstance(node.func, ast.Name):
                    name = node.func.id
                if name in _EVENT_SINK_NAMES:
                    return f"emits into an ordered sink ({name}())"
    return None


def check_set_iteration(ctx: ModuleContext) -> Iterator[Finding]:
    """REP004: set iteration order is PYTHONHASHSEED-dependent.

    The exact ESG bug class: summing floats (or emitting events) while
    iterating a set produces hash-order-dependent results.  Iterate
    ``sorted(the_set)`` — or keep an ordered container — whenever the body
    accumulates or emits.
    """
    scopes: list[ast.AST] = [ctx.tree] + [
        node
        for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for scope in scopes:
        local_sets = _collect_local_sets(ctx, scope)
        for node in _walk_scope(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if not _is_set_expr(ctx, node.iter, local_sets):
                    continue
                reason = _body_is_order_sensitive(node.body)
                if reason is None:
                    continue
                yield Finding(
                    node,
                    f"iteration over a set where the body {reason}: set order "
                    "is PYTHONHASHSEED-dependent; iterate sorted(...) or an "
                    "ordered container",
                )
            elif isinstance(node, ast.Call):
                resolved = ctx.resolve_call(node)
                if resolved in ("sum", "math.fsum") and node.args:
                    arg = node.args[0]
                    arg_is_set = _is_set_expr(ctx, arg, local_sets)
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp)) and any(
                        _is_set_expr(ctx, gen.iter, local_sets) for gen in arg.generators
                    ):
                        arg_is_set = True
                    if arg_is_set:
                        yield Finding(
                            node,
                            f"{resolved}() over a set: float addition is not "
                            "associative, so the total is "
                            "PYTHONHASHSEED-dependent; sum over sorted(...) "
                            "instead",
                        )
                elif (
                    resolved in ("list", "tuple")
                    and len(node.args) == 1
                    and _is_set_expr(ctx, node.args[0], local_sets)
                ):
                    parent = ctx.parent(node)
                    if (
                        isinstance(parent, ast.Call)
                        and ctx.resolve_call(parent) == "sorted"
                    ):
                        continue  # sorted(list(s)) restores a total order
                    yield Finding(
                        node,
                        f"{resolved}() over a set materializes "
                        "PYTHONHASHSEED-dependent iteration order into an "
                        "ordered container; use sorted(...) instead",
                    )
            elif isinstance(node, (ast.ListComp, ast.DictComp)):
                if not any(
                    _is_set_expr(ctx, gen.iter, local_sets) for gen in node.generators
                ):
                    continue
                parent = ctx.parent(node)
                if isinstance(parent, ast.Call) and ctx.resolve_call(parent) in (
                    # order-free consumers — and sum(), which the Call branch
                    # above already owns (flagging it here would double-report)
                    "sorted", "set", "frozenset", "sum", "min", "max", "len", "any", "all"
                ):
                    continue
                kind = "list" if isinstance(node, ast.ListComp) else "dict"
                yield Finding(
                    node,
                    f"{kind} comprehension over a set materializes "
                    "PYTHONHASHSEED-dependent iteration order into an "
                    "ordered container; iterate sorted(...) instead",
                )


# ----------------------------------------------------------------------
# REP005: mutable defaults

_MUTABLE_FACTORIES = frozenset(
    {
        "list", "dict", "set", "bytearray",
        "collections.defaultdict", "collections.OrderedDict", "collections.Counter",
        "collections.deque", "defaultdict", "OrderedDict", "Counter", "deque",
    }
)
_SPEC_CLASS_SUFFIXES = ("Spec", "Config", "Scenario", "Settings", "Action", "Schedule")


def _is_mutable_literal(ctx: ModuleContext, node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        resolved = ctx.resolve_call(node)
        return resolved in _MUTABLE_FACTORIES
    return False


def _is_dataclass(ctx: ModuleContext, node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        resolved = ctx.resolve(target)
        if resolved in ("dataclasses.dataclass", "dataclass"):
            return True
    return False


def _is_spec_class(node: ast.ClassDef) -> bool:
    return node.name.endswith(_SPEC_CLASS_SUFFIXES)


def check_mutable_defaults(ctx: ModuleContext) -> Iterator[Finding]:
    """REP005: a mutable default is shared state across calls — and processes.

    Specs and configs are pickled across the engine's process boundary; a
    shared mutable default mutated on one run leaks into every later run in
    the same worker, making results depend on execution order.
    """
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable_literal(ctx, default):
                    name = getattr(node, "name", "<lambda>")
                    yield Finding(
                        default,
                        f"mutable default argument in {name}(): the object is "
                        "created once and shared by every call; default to "
                        "None (or field(default_factory=...) in dataclasses)",
                    )
        elif isinstance(node, ast.ClassDef):
            if not (_is_dataclass(ctx, node) or _is_spec_class(node)):
                continue
            for stmt in node.body:
                value: ast.AST | None = None
                if isinstance(stmt, ast.AnnAssign):
                    value = stmt.value
                elif isinstance(stmt, ast.Assign):
                    value = stmt.value
                if value is not None and _is_mutable_literal(ctx, value):
                    yield Finding(
                        value,
                        f"mutable class-level default in {node.name}: shared by "
                        "every instance (and survives pickling inconsistently); "
                        "use field(default_factory=...)",
                    )


# ----------------------------------------------------------------------
# REP006: closures in picklable spec fields

_SPEC_CONSTRUCTORS = frozenset(
    {
        "RunSpec", "Scenario", "ExperimentConfig", "SimulationConfig",
        "ClusterConfig", "MetricsConfig", "ChurnSpec", "ChurnSchedule",
        "ChurnAction", "ClusterTopology", "replace",
    }
)


def _nested_function_names(
    function: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    names: set[str] = set()
    for stmt in function.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not function:
                names.add(node.name)
    return names


def check_closures_in_specs(ctx: ModuleContext) -> Iterator[Finding]:
    """REP006: lambdas and local closures cannot cross the process boundary.

    ``RunSpec`` / ``Scenario`` objects are pickled to engine workers; a
    lambda or nested function in a field raises ``PicklingError`` only when
    ``n_jobs > 1`` — the worst kind of works-on-my-run bug.  Use a named
    module-level function (or a registered name) instead.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve_call(node)
        if resolved is None:
            continue
        terminal = resolved.rsplit(".", 1)[-1]
        if terminal not in _SPEC_CONSTRUCTORS:
            continue
        enclosing = ctx.enclosing_function(node)
        nested = _nested_function_names(enclosing) if enclosing is not None else set()
        for value, label in [(arg, "positional argument") for arg in node.args] + [
            (kw.value, f"field {kw.arg!r}") for kw in node.keywords if kw.arg
        ]:
            if isinstance(value, ast.Lambda):
                yield Finding(
                    value,
                    f"lambda assigned into {terminal} ({label}): specs cross "
                    "the engine's process boundary and lambdas do not pickle; "
                    "use a module-level function or a registered name",
                )
            elif isinstance(value, ast.Name) and value.id in nested:
                yield Finding(
                    value,
                    f"locally-defined function {value.id!r} assigned into "
                    f"{terminal} ({label}): nested functions do not pickle "
                    "across the engine's process boundary; move it to module "
                    "level",
                )


# ----------------------------------------------------------------------
# REP007: environment reads in the hot path

def check_environ_reads(ctx: ModuleContext) -> Iterator[Finding]:
    """REP007: the environment is per-process ambient state, not part of the spec.

    A simulation that reads ``os.environ`` can differ between the parent
    and spawned workers (or between two hosts in a sharded sweep) while
    producing the same content-addressed cache key — silently poisoning the
    store.  Configuration belongs in the spec; only the CLI / benchmark
    layer may read the environment.
    """
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Attribute, ast.Name)):
            resolved = ctx.resolve(node) or ""
            if resolved != "os.environ" and not resolved.startswith("os.environ."):
                continue
            # Flag each os.environ expression once, at the outermost attribute
            # in the chain (os.environ["X"], os.environ.get(...), `in` tests).
            if isinstance(ctx.parent(node), ast.Attribute):
                continue
            yield Finding(
                node,
                "os.environ read in simulation code: ambient per-process state "
                "bypasses the spec (and the result store's cache key); thread "
                "the value through the config instead",
            )
        elif isinstance(node, ast.Call) and ctx.resolve_call(node) == "os.getenv":
            yield Finding(
                node,
                "os.getenv() read in simulation code: ambient per-process state "
                "bypasses the spec (and the result store's cache key); thread "
                "the value through the config instead",
            )


# ----------------------------------------------------------------------
# REP008: sorting objects without a total order

def _class_defines_order(ctx: ModuleContext, node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and stmt.name in (
            "__lt__", "__le__", "__gt__", "__ge__"
        ):
            return True
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        resolved = ctx.resolve(target)
        if resolved in ("functools.total_ordering", "total_ordering"):
            return True
        if resolved in ("dataclasses.dataclass", "dataclass") and isinstance(
            decorator, ast.Call
        ):
            for kw in decorator.keywords:
                if kw.arg == "order" and isinstance(kw.value, ast.Constant):
                    return bool(kw.value.value)
    return False


def _unordered_classes(ctx: ModuleContext) -> set[str]:
    return {
        node.name
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.ClassDef) and not _class_defines_order(ctx, node)
    }


def _element_class(ctx: ModuleContext, node: ast.AST) -> str | None:
    """Class name constructed by every element of a list display/comprehension."""
    def ctor(expr: ast.AST) -> str | None:
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id
        return None

    if isinstance(node, ast.List) and node.elts:
        names = {ctor(elt) for elt in node.elts}
        return names.pop() if len(names) == 1 else None
    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        return ctor(node.elt)
    return None


def check_unkeyed_sorts(ctx: ModuleContext) -> Iterator[Finding]:
    """REP008: sorting relies on ``__lt__``; without one, Python raises — or
    worse, an inherited partial order ties inconsistently.

    Only flags sorts whose elements are provably instances of a class
    defined in the same module that lacks ``__lt__`` / ``order=True`` /
    ``total_ordering``.  Deterministic tie-breaking needs an explicit
    ``key=`` with a total order.
    """
    unordered = _unordered_classes(ctx)
    if not unordered:
        return

    # name -> class constructed into it via a list display/comprehension
    inferred: dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                element = _element_class(ctx, node.value)
                if element is not None:
                    inferred[target.id] = element

    def sorted_target_class(expr: ast.AST) -> str | None:
        element = _element_class(ctx, expr)
        if element is None and isinstance(expr, ast.Name):
            element = inferred.get(expr.id)
        return element if element in unordered else None

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        has_key = any(kw.arg == "key" for kw in node.keywords)
        if has_key:
            continue
        element: str | None = None
        if ctx.resolve_call(node) == "sorted" and node.args:
            element = sorted_target_class(node.args[0])
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "sort"
            and not node.args
        ):
            element = sorted_target_class(node.func.value)
        if element is not None:
            yield Finding(
                node,
                f"sort over {element} instances without key=: {element} defines "
                "no total order (__lt__ / dataclass(order=True)), so this "
                "either raises or tie-breaks unstably; pass an explicit "
                "key= with a total order",
            )


# ----------------------------------------------------------------------
# the catalog

RULES: tuple[Rule, ...] = (
    Rule(
        code="REP001",
        name="wall-clock",
        summary="wall-clock reads (time.time/perf_counter/datetime.now) in simulation code",
        check=check_wall_clock,
        layered=True,
    ),
    Rule(
        code="REP002",
        name="hash-id-key",
        summary="builtin hash()/id() flowing into keys, seeds or sort keys",
        check=check_hash_id_in_keys,
    ),
    Rule(
        code="REP003",
        name="global-rng",
        summary="unseeded/global RNG (random.*, np.random.* module functions)",
        check=check_global_rng,
        layered=True,
    ),
    Rule(
        code="REP004",
        name="set-iteration",
        summary="order-sensitive iteration (accumulation/event emission) over sets",
        check=check_set_iteration,
    ),
    Rule(
        code="REP005",
        name="mutable-default",
        summary="mutable default arguments and mutable spec/config class defaults",
        check=check_mutable_defaults,
    ),
    Rule(
        code="REP006",
        name="closure-in-spec",
        summary="lambdas/local closures in picklable spec fields",
        check=check_closures_in_specs,
    ),
    Rule(
        code="REP007",
        name="environ-read",
        summary="os.environ/os.getenv reads in simulation code",
        check=check_environ_reads,
        layered=True,
    ),
    Rule(
        code="REP008",
        name="unkeyed-sort",
        summary="sorting objects lacking a total order without an explicit key=",
        check=check_unkeyed_sorts,
    ),
)


def rule_codes() -> tuple[str, ...]:
    """The registered rule codes, in catalog order."""
    return tuple(rule.code for rule in RULES)
