"""Per-module analysis context shared by every rule.

Builds, once per file:

- the parsed AST,
- an import table mapping local names to dotted module paths so rules can
  resolve ``pc()`` back to ``time.perf_counter`` through any alias,
- a parent map (child node -> parent node) for upward context walks,
- an enclosing-scope map (node -> innermost function/class qualname stack),
- the parsed inline suppressions.

All of it is stdlib ``ast`` — the analyzer must run in any environment the
package itself runs in, with no third-party dependency.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.suppressions import Suppression, parse_suppressions

__all__ = ["ModuleContext"]


def _build_import_table(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted path they were imported as.

    ``import numpy as np``            -> ``{"np": "numpy"}``
    ``from time import perf_counter`` -> ``{"perf_counter": "time.perf_counter"}``
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``
    Relative imports resolve to their bare module path (package-relative
    determinism hazards are named absolutely in the rule tables, so a
    relative alias simply never matches — conservative, no false positives).
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as c` binds c -> a.b.
                table[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: not resolvable to a stdlib path
                continue
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{module}.{alias.name}" if module else alias.name
    return table


def _build_parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


@dataclass
class ModuleContext:
    """Everything a rule needs to analyze one module."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str]
    imports: dict[str, str]
    parents: dict[ast.AST, ast.AST]
    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, path: str = "<memory>") -> "ModuleContext":
        """Parse ``source`` and precompute the shared lookup tables."""
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=lines,
            imports=_build_import_table(tree),
            parents=_build_parent_map(tree),
            suppressions=parse_suppressions(lines),
        )

    # ------------------------------------------------------------------
    # name resolution

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted path of a ``Name``/``Attribute`` chain through import aliases.

        ``np.random.normal`` resolves to ``numpy.random.normal`` when ``np``
        was imported as numpy; a bare local name that is not an import
        resolves to itself (so builtins like ``hash`` resolve to ``hash``
        unless shadowed by an import).  Returns ``None`` for anything that
        is not a plain dotted chain (calls, subscripts, ...).
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def resolve_call(self, node: ast.Call) -> str | None:
        """Dotted path of a call's function, or ``None``."""
        return self.resolve(node.func)

    # ------------------------------------------------------------------
    # structural helpers

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> list[ast.AST]:
        """Chain of parents from ``node`` (exclusive) to the module root."""
        chain: list[ast.AST] = []
        current = self.parents.get(node)
        while current is not None:
            chain.append(current)
            current = self.parents.get(current)
        return chain

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """Innermost function definition containing ``node``."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        """Innermost class definition containing ``node``."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def snippet(self, node: ast.AST) -> str:
        """The stripped physical source line a node starts on."""
        lineno = getattr(node, "lineno", None)
        if lineno is None or not 1 <= lineno <= len(self.lines):
            return ""
        return self.lines[lineno - 1].strip()
