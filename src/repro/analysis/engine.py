"""Analysis driver: run the rule catalog over sources, files, or trees.

The engine owns everything that is not a rule: file discovery, the layer
allowlist, suppression application (including the REP000 meta-diagnostics
for malformed or unused suppressions), baseline matching, and the text /
JSON report formats.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline, BaselineEntry, match_baseline
from repro.analysis.context import ModuleContext
from repro.analysis.rules import META_RULE_CODE, RULES
from repro.analysis.violations import Rule, Violation

__all__ = [
    "DEFAULT_LAYER_ALLOWLIST",
    "LintConfig",
    "LintReport",
    "analyze_path",
    "analyze_paths",
    "analyze_source",
    "format_json",
    "format_text",
]

REPORT_SCHEMA_VERSION = 1

#: Files where wall-clock, global-RNG and environment reads are legitimate:
#: the CLI / benchmark layer reports real elapsed time and reads real knobs.
#: Matched with fnmatch against the forward-slash relative path.
DEFAULT_LAYER_ALLOWLIST: tuple[str, ...] = (
    "*/experiments/cli.py",
    "experiments/cli.py",
    "benchmarks/*",
    "*/conftest.py",
    "conftest.py",
)


@dataclass(frozen=True)
class LintConfig:
    """Knobs for one analysis run."""

    #: fnmatch patterns (on the relative posix path) exempt from layered rules.
    layer_allowlist: tuple[str, ...] = DEFAULT_LAYER_ALLOWLIST
    #: Restrict to these rule codes (None = all registered rules).
    select: tuple[str, ...] | None = None

    def active_rules(self) -> tuple[Rule, ...]:
        if self.select is None:
            return RULES
        unknown = set(self.select) - {rule.code for rule in RULES}
        if unknown:
            raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        return tuple(rule for rule in RULES if rule.code in self.select)

    def is_allowlisted(self, relative_path: str) -> bool:
        return any(
            fnmatch.fnmatch(relative_path, pattern) for pattern in self.layer_allowlist
        )


@dataclass
class LintReport:
    """The outcome of analyzing a set of files."""

    root: str
    violations: list[Violation] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_analyzed: int = 0

    @property
    def failures(self) -> list[Violation]:
        return [violation for violation in self.violations if violation.is_failure]

    @property
    def suppressed(self) -> list[Violation]:
        return [violation for violation in self.violations if violation.suppressed]

    @property
    def baselined(self) -> list[Violation]:
        return [violation for violation in self.violations if violation.baselined]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.stale_baseline

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def analyze_source(
    source: str,
    path: str = "<memory>",
    *,
    config: LintConfig | None = None,
) -> list[Violation]:
    """Analyze one module's source; returns every violation (suppressed too).

    ``path`` is used both for reporting and for the layer allowlist, so
    pass the path relative to the scan root when analyzing files.
    """
    config = config or LintConfig()
    ctx = ModuleContext.from_source(source, path=path)
    allowlisted = config.is_allowlisted(path)

    raw: list[Violation] = []
    for rule in config.active_rules():
        if rule.layered and allowlisted:
            continue
        for finding in rule.check(ctx):
            node = finding.node
            raw.append(
                Violation(
                    rule=rule.code,
                    path=path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    message=finding.message,
                    snippet=ctx.snippet(node),
                )
            )

    violations: list[Violation] = []
    for violation in raw:
        suppression = next(
            (
                candidate
                for candidate in ctx.suppressions
                if candidate.covers(violation.rule, violation.line)
            ),
            None,
        )
        if suppression is not None:
            suppression.used = True
            violations.append(
                Violation(
                    rule=violation.rule,
                    path=violation.path,
                    line=violation.line,
                    col=violation.col,
                    message=violation.message,
                    snippet=violation.snippet,
                    suppressed=True,
                    justification=suppression.justification,
                )
            )
        else:
            violations.append(violation)

    # Meta-diagnostics: malformed suppressions are always errors;
    # a well-formed suppression that silenced nothing is dead weight that
    # would hide a future regression, so it must be removed.
    for suppression in ctx.suppressions:
        if suppression.malformed:
            violations.append(
                Violation(
                    rule=META_RULE_CODE,
                    path=path,
                    line=suppression.line,
                    col=0,
                    message=f"invalid suppression: {suppression.malformed}",
                    snippet=ctx.lines[suppression.line - 1].strip()
                    if suppression.line <= len(ctx.lines)
                    else "",
                )
            )
        elif not suppression.used:
            codes = ",".join(suppression.codes)
            violations.append(
                Violation(
                    rule=META_RULE_CODE,
                    path=path,
                    line=suppression.line,
                    col=0,
                    message=(
                        f"unused suppression for {codes}: no such violation on "
                        "the target line — delete the comment (stale "
                        "suppressions hide future regressions)"
                    ),
                    snippet=ctx.lines[suppression.line - 1].strip()
                    if suppression.line <= len(ctx.lines)
                    else "",
                )
            )

    violations.sort(key=lambda violation: (violation.line, violation.col, violation.rule))
    return violations


def iter_python_files(root: Path) -> Iterable[Path]:
    """Python files under ``root`` in a deterministic order."""
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


def analyze_path(
    root: Path,
    *,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Analyze every ``*.py`` under ``root`` (or the single file ``root``)."""
    return analyze_paths([root], config=config, baseline=baseline)


def analyze_paths(
    roots: Sequence[Path],
    *,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Analyze several roots into one report.

    Paths in the report are relative to each file's root (posix-style), so
    baselines are stable regardless of where the repo is checked out.
    """
    config = config or LintConfig()
    violations: list[Violation] = []
    files = 0
    for root in roots:
        root = Path(root)
        base = root if root.is_dir() else root.parent
        for file_path in iter_python_files(root):
            relative = file_path.relative_to(base).as_posix()
            files += 1
            source = file_path.read_text()
            violations.extend(analyze_source(source, path=relative, config=config))

    stale: list[BaselineEntry] = []
    if baseline is not None:
        violations, stale = match_baseline(violations, baseline)

    violations.sort(key=lambda violation: (violation.path, violation.line, violation.col))
    return LintReport(
        root=", ".join(str(root) for root in roots),
        violations=violations,
        stale_baseline=stale,
        files_analyzed=files,
    )


# ----------------------------------------------------------------------
# report formats

def format_text(report: LintReport) -> str:
    """Human-readable report: one line per violation, then a summary."""
    lines: list[str] = []
    for violation in report.violations:
        status = ""
        if violation.suppressed:
            status = f"  [suppressed: {violation.justification}]"
        elif violation.baselined:
            status = "  [baselined]"
        lines.append(
            f"{violation.location()}: {violation.rule} {violation.message}{status}"
        )
    for entry in report.stale_baseline:
        lines.append(
            f"{entry.path}: stale baseline entry for {entry.rule} "
            f"(snippet {entry.snippet!r} x{entry.count} no longer matches — "
            "remove it from the baseline)"
        )
    failures = len(report.failures)
    lines.append(
        f"{report.files_analyzed} files analyzed: {failures} failure(s), "
        f"{len(report.baselined)} baselined, {len(report.suppressed)} suppressed, "
        f"{len(report.stale_baseline)} stale baseline entr(ies)"
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact)."""
    document = {
        "version": REPORT_SCHEMA_VERSION,
        "root": report.root,
        "files_analyzed": report.files_analyzed,
        "ok": report.ok,
        "counts": {
            "total": len(report.violations),
            "failures": len(report.failures),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "stale_baseline": len(report.stale_baseline),
        },
        "violations": [violation.to_json() for violation in report.violations],
        "stale_baseline": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "snippet": entry.snippet,
                "count": entry.count,
            }
            for entry in report.stale_baseline
        ],
        "rules": {
            rule.code: {
                "name": rule.name,
                "summary": rule.summary,
                "layered": rule.layered,
            }
            for rule in RULES
        },
    }
    return json.dumps(document, indent=2, sort_keys=True)
