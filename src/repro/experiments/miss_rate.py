"""Table 4: pre-planned scheduling miss rate of the static planners.

"Table 4 shows the percentage of times when the configurations fail to apply
to a function because the batch size in the configuration is even greater
than the number of jobs in the queue of that function when it is time to be
scheduled."  The paper reports 9.6-51.7% for Orion's best-first search and
58.7-85.5% for Aquatope's BO, growing with workload intensity for Orion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.experiments.store import ResultStore

from repro.experiments.engine import ExperimentEngine, RunSpec
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import ExperimentConfig
from repro.workloads.generator import WORKLOAD_SETTINGS

__all__ = ["MissRateRow", "run_table4", "render_table4"]


@dataclass(frozen=True)
class MissRateRow:
    """Pre-planned configuration miss rate of one policy under one setting."""

    setting: str
    policy: str
    plan_attempts: int
    plan_misses: int

    @property
    def miss_rate(self) -> float:
        """Fraction of plan applications that could not be applied as planned."""
        if self.plan_attempts == 0:
            return 0.0
        return self.plan_misses / self.plan_attempts


def run_table4(
    policies: Iterable[str] = ("Orion", "Aquatope"),
    settings: Iterable[str] = tuple(WORKLOAD_SETTINGS),
    *,
    config: ExperimentConfig | None = None,
    n_jobs: int | None = 1,
    store: "ResultStore | str | None" = None,
) -> list[MissRateRow]:
    """Measure the configuration miss rate of the static planners.

    Summary-only: with a ``store``, repeat renders load every cached cell.
    """
    config = config or ExperimentConfig()
    specs = [
        RunSpec(policy=policy, setting=setting, config=config, summary_only=True)
        for setting in settings
        for policy in policies
    ]
    results = ExperimentEngine(n_jobs, store=store).run(specs)
    return [
        MissRateRow(
            setting=spec.setting_name,
            policy=spec.policy,
            plan_attempts=result.summary.plan_attempts,
            plan_misses=result.summary.plan_misses,
        )
        for spec, result in zip(specs, results)
    ]


def render_table4(rows: list[MissRateRow]) -> str:
    """Text rendering of Table 4."""
    table_rows = [
        [r.setting, r.policy, r.plan_attempts, r.plan_misses, format_percent(r.miss_rate)]
        for r in rows
    ]
    return format_table(
        ["Setting", "Policy", "Plan attempts", "Misses", "Miss rate"],
        table_rows,
        title="Table 4: Pre-planned scheduling miss rate",
    )
