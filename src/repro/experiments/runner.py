"""Shared experiment runner: build workloads, run one (policy, setting) pair.

All figure/table modules build on :func:`run_experiment` /
:func:`run_matrix`, which guarantee that every policy sees exactly the same
workload (same seed, same arrival times, same application picks) and the
same platform configuration — the paper's "the only difference is the
scheduling algorithm" methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - engine/store build on this module
    from repro.experiments.store import ResultStore

from repro.baselines.aquatope import AquatopePolicy
from repro.baselines.fastgshare import FaSTGSharePolicy
from repro.baselines.infless import INFlessPolicy
from repro.baselines.orion import OrionPolicy
from repro.cluster.autoscale import Autoscaler, AutoscaleSpec, resolve_autoscale
from repro.cluster.churn import ChurnSchedule, ChurnSpec, resolve_churn
from repro.cluster.cluster import ClusterConfig
from repro.cluster.controller import ControllerConfig
from repro.cluster.metrics import MetricsCollector, MetricsConfig, RunSummary
from repro.cluster.policy_api import SchedulingPolicy
from repro.cluster.simulator import LOOP_MODES, Simulation, SimulationConfig
from repro.core.esg import ESGPolicy
from repro.profiles.configuration import ConfigurationSpace
from repro.profiles.profiler import ProfileStore
from repro.utils.rng import derive_rng
from repro.utils.validation import find_duplicates
from repro.workloads.applications import build_paper_applications
from repro.workloads.generator import WORKLOAD_SETTINGS, WorkloadGenerator, WorkloadSetting
from repro.workloads.request import Request
from repro.workloads.scenarios import Scenario, get_scenario
from repro.workloads.stream import WORKLOAD_MODES, RequestStream

__all__ = [
    "DEFAULT_POLICIES",
    "EXPERIMENT_SPACE",
    "LOOP_MODES",
    "WORKLOAD_MODES",
    "ExperimentConfig",
    "RunResult",
    "build_profile_store",
    "build_request_stream",
    "build_requests",
    "make_policy",
    "run_experiment",
    "run_matrix",
    "run_scenario_matrix",
    "run_setting",
]

#: Policy names in the order the paper's figures list them.
DEFAULT_POLICIES: tuple[str, ...] = ("ESG", "INFless", "FaST-GShare", "Orion", "Aquatope")

#: Configuration space used by the end-to-end experiments: 4 batch sizes,
#: 4 vCPU counts, 4 vGPU counts (64 configurations per function).  The
#: overhead experiments use :meth:`ConfigurationSpace.paper_256` instead.
EXPERIMENT_SPACE = ConfigurationSpace(
    batch_options=(1, 2, 4, 8),
    vcpu_options=(1, 2, 4, 8),
    vgpu_options=(1, 2, 4, 7),
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment run."""

    num_requests: int = 120
    seed: int = 42
    noise_sigma: float = 0.05
    space: ConfigurationSpace = EXPERIMENT_SPACE
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    #: The evaluation starts from a warm cluster (every function resident on
    #: every node), reflecting the steady state of a serving deployment: the
    #: paper's workloads are far shorter than a single cold start, so a cold
    #: start anywhere would otherwise dominate every metric.  Cold-start
    #: behaviour itself is exercised by the library's "home"/"none" modes.
    controller: ControllerConfig = field(
        default_factory=lambda: ControllerConfig(initial_warm="all")
    )
    burstiness: float = 0.0
    #: Simulated-time hard stop; inf (default) = run until the event queue
    #: drains.  A scenario's ``horizon_ms`` applies when this is left at inf.
    max_time_ms: float = float("inf")
    #: True when ``cluster`` was set explicitly (e.g. by a CLI ``--topology``
    #: flag): a scenario's pinned topology then never overrides it, even if
    #: the explicit value happens to equal the paper default.
    cluster_pinned: bool = False
    #: Metrics storage mode: retained object lists (default, debuggable) or
    #: streaming accumulators (constant-size state per app, for very large
    #: runs).  Summaries are byte-identical across modes.
    metrics: MetricsConfig = field(default_factory=MetricsConfig)
    #: Workload generation mode: ``"materialized"`` (default) builds the
    #: full request list up front; ``"streaming"`` hands the simulator a
    #: lazy :class:`~repro.workloads.stream.RequestStream` that it pulls
    #: one arrival at a time — ~16 bytes per request instead of a whole
    #: object graph, with byte-identical summaries.  Combine with
    #: ``metrics=MetricsConfig(mode="streaming")`` for bounded-memory
    #: million-request runs end to end.
    workload_mode: str = "materialized"
    #: Event-loop implementation: ``"fast"`` (default; split-heap queue,
    #: cached dispatch, memoized hot-path lookups) or ``"compat"`` (the
    #: original loop — the parity anchor).  Summaries are byte-identical.
    loop_mode: str = "fast"
    #: Capacity churn: a registered :class:`~repro.cluster.churn.ChurnSpec`
    #: name, a spec (expanded with this config's seed at run time), or a
    #: concrete :class:`~repro.cluster.churn.ChurnSchedule`.  ``None``
    #: (default) defers to the scenario's ``churn``, if any; a static
    #: cluster otherwise.
    churn: "ChurnSpec | ChurnSchedule | str | None" = None
    #: Adaptive prewarm: a registered
    #: :class:`~repro.cluster.autoscale.AutoscaleSpec` name or a spec.
    #: ``None`` (default) defers to the scenario's ``autoscale``, if any;
    #: the static EWMA prewarmer otherwise.  When set, an
    #: :class:`~repro.cluster.autoscale.Autoscaler` attaches to the run as
    #: an observer and the static prewarmer stops emitting plans.
    autoscale: "AutoscaleSpec | str | None" = None

    def __post_init__(self) -> None:
        if self.workload_mode not in WORKLOAD_MODES:
            raise ValueError(
                f"unknown workload mode {self.workload_mode!r}; "
                f"expected one of {WORKLOAD_MODES}"
            )
        if self.loop_mode not in LOOP_MODES:
            raise ValueError(
                f"unknown loop mode {self.loop_mode!r}; "
                f"expected one of {LOOP_MODES}"
            )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass
class RunResult:
    """One simulated run with both the summary and the raw metrics."""

    policy_name: str
    setting: WorkloadSetting
    summary: RunSummary
    metrics: MetricsCollector
    #: The materialized workload; empty for streaming-workload runs (the
    #: requests were pulled lazily and never retained) and for
    #: ``summary_only`` engine results (never shipped over IPC).
    requests: list[Request]
    #: Name of the scenario the run was built from, when one was used.
    scenario_name: str | None = None

    @property
    def slo_hit_rate(self) -> float:
        """Convenience accessor."""
        return self.summary.slo_hit_rate

    @property
    def total_cost_cents(self) -> float:
        """Convenience accessor."""
        return self.summary.total_cost_cents


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def build_profile_store(space: ConfigurationSpace | None = None) -> ProfileStore:
    """Profile the six paper functions over ``space`` (default 64 configs)."""
    return ProfileStore.build(space=space or EXPERIMENT_SPACE)


def _build_generator(
    setting: WorkloadSetting | str,
    seed: int,
    profile_store: ProfileStore,
    burstiness: float,
) -> WorkloadGenerator:
    if isinstance(setting, str):
        setting = WORKLOAD_SETTINGS[setting]
    return WorkloadGenerator(
        applications=build_paper_applications(),
        setting=setting,
        profile_store=profile_store,
        rng=derive_rng(seed, "workload", setting.name),
        burstiness=burstiness,
    )


def build_requests(
    setting: WorkloadSetting | str,
    num_requests: int,
    seed: int,
    profile_store: ProfileStore,
    *,
    burstiness: float = 0.0,
) -> list[Request]:
    """Generate the request stream for one workload setting.

    The random stream depends only on ``seed`` and the setting name, so
    every policy evaluated under the same (setting, seed) sees the same
    arrivals and application mix.
    """
    return _build_generator(setting, seed, profile_store, burstiness).generate(num_requests)


def build_request_stream(
    setting: WorkloadSetting | str,
    num_requests: int,
    seed: int,
    profile_store: ProfileStore,
    *,
    burstiness: float = 0.0,
) -> RequestStream:
    """Lazy counterpart of :func:`build_requests` (byte-identical requests)."""
    return _build_generator(setting, seed, profile_store, burstiness).stream(num_requests)


def make_policy(name: str, /, **overrides) -> SchedulingPolicy:
    """Instantiate a policy by its paper name (case-insensitive).

    The lookup name is positional-only so that a ``name=...`` override (the
    constructors' display-name parameter, used by the ablation variants) can
    be forwarded alongside it.
    """
    key = name.strip().lower().replace("_", "-")
    if key in ("esg",):
        return ESGPolicy(**overrides)
    if key in ("infless",):
        return INFlessPolicy(**overrides)
    if key in ("fast-gshare", "fastgshare", "fast gshare"):
        return FaSTGSharePolicy(**overrides)
    if key in ("orion", "best-first", "bfs"):
        return OrionPolicy(**overrides)
    if key in ("aquatope", "bo"):
        return AquatopePolicy(**overrides)
    raise ValueError(
        f"unknown policy {name!r}; expected one of {', '.join(DEFAULT_POLICIES)}"
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_experiment(
    policy: SchedulingPolicy | str,
    setting: WorkloadSetting | str | None = None,
    *,
    config: ExperimentConfig | None = None,
    profile_store: ProfileStore | None = None,
    requests: Sequence[Request] | None = None,
    scenario: Scenario | str | None = None,
) -> RunResult:
    """Run one policy under one workload setting and return the full result.

    ``scenario`` (a name or a :class:`~repro.workloads.scenarios.Scenario`)
    replaces the ``setting`` argument with a complete demand bundle:
    applications x setting x arrival process x horizon.  A paper-default
    scenario (``paper-<setting>``) produces byte-identical results to
    passing the bare setting.

    ``config.workload_mode == "streaming"`` builds the workload as a lazy
    :class:`~repro.workloads.stream.RequestStream` the simulator pulls on
    demand instead of a materialized list: summaries are byte-identical,
    the result's ``requests`` list stays empty.  An explicitly passed
    ``requests`` sequence is already materialized and runs as such
    regardless of the mode.
    """
    config = config or ExperimentConfig()
    if scenario is not None:
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        if setting is not None:
            given = setting if isinstance(setting, str) else setting.name
            if given != scenario.setting:
                raise ValueError(
                    f"setting {given!r} conflicts with scenario "
                    f"{scenario.name!r} (setting {scenario.setting!r}); "
                    f"pass only one of the two"
                )
        setting = scenario.setting_obj
    elif setting is None:
        raise TypeError("run_experiment needs a setting or a scenario")
    if isinstance(setting, str):
        setting = WORKLOAD_SETTINGS[setting]
    if isinstance(policy, str):
        policy = make_policy(policy)
    if profile_store is None:
        profile_store = build_profile_store(config.space)
    max_time_ms = config.max_time_ms
    if scenario is not None and scenario.horizon_ms is not None and max_time_ms == float("inf"):
        max_time_ms = scenario.horizon_ms
    cluster_config = config.cluster
    default_cluster = ClusterConfig()
    shape_is_default = (
        cluster_config.num_invokers == default_cluster.num_invokers
        and cluster_config.vcpus_per_invoker == default_cluster.vcpus_per_invoker
        and cluster_config.vgpus_per_invoker == default_cluster.vgpus_per_invoker
    )
    if (
        scenario is not None
        and scenario.topology is not None
        and not config.cluster_pinned
        and shape_is_default
    ):
        # Scenario-pinned cluster shape, applied when the experiment config
        # leaves the cluster *shape* at the paper default (mirrors
        # horizon_ms).  index_mode and keep_alive_ms are orthogonal knobs
        # and carry over — e.g. a scan-mode parity run, or a short-keep-
        # alive experiment, of a topology-pinned scenario still gets the
        # pinned cluster size.  A topology's own non-default keep-alive
        # wins over the config's.
        topology = scenario.topology
        keep_alive_ms = (
            topology.keep_alive_ms
            if topology.keep_alive_ms != default_cluster.keep_alive_ms
            else cluster_config.keep_alive_ms
        )
        cluster_config = replace(
            topology.to_cluster_config(index_mode=cluster_config.index_mode),
            keep_alive_ms=keep_alive_ms,
        )
    churn = config.churn
    if churn is None and scenario is not None:
        churn = scenario.churn
    # Specs/names expand into a concrete schedule with this run's seed and
    # the *resolved* cluster config (a scenario-pinned topology changes the
    # invoker count the schedule draws targets from).
    churn_schedule = resolve_churn(churn, config.seed, cluster_config)
    autoscale = config.autoscale
    if autoscale is None and scenario is not None:
        autoscale = scenario.autoscale
    autoscale_spec = resolve_autoscale(autoscale)
    streaming = config.workload_mode == "streaming" and requests is None
    workload: Sequence[Request] | RequestStream
    if requests is None:
        if scenario is not None:
            num_requests = scenario.num_requests or config.num_requests
            if streaming:
                workload = scenario.build_stream(
                    num_requests, config.seed, profile_store, burstiness=config.burstiness
                )
            else:
                workload = scenario.build_requests(
                    num_requests, config.seed, profile_store, burstiness=config.burstiness
                )
        elif streaming:
            workload = build_request_stream(
                setting,
                config.num_requests,
                config.seed,
                profile_store,
                burstiness=config.burstiness,
            )
        else:
            workload = build_requests(
                setting,
                config.num_requests,
                config.seed,
                profile_store,
                burstiness=config.burstiness,
            )
    else:
        # An explicit request list is already materialized; workload_mode
        # applies only to workloads this function builds itself.
        workload = list(requests)

    simulation = Simulation(
        policy=policy,
        requests=workload,
        profile_store=profile_store,
        config=SimulationConfig(
            seed=config.seed,
            cluster=cluster_config,
            controller=config.controller,
            noise_sigma=config.noise_sigma,
            max_time_ms=max_time_ms,
            metrics=config.metrics,
            loop_mode=config.loop_mode,
            churn=churn_schedule,
        ),
        setting_name=setting.name,
    )
    if autoscale_spec is not None:
        # Attached between construction and run: the autoscaler is a pure
        # observer (event hooks + the prewarm plan mechanism), so the
        # simulation wiring above is identical with and without it.
        Autoscaler(spec=autoscale_spec).attach(simulation)
    summary = simulation.run()
    return RunResult(
        policy_name=policy.name,
        setting=setting,
        summary=summary,
        metrics=simulation.metrics,
        requests=[] if streaming else list(workload),
        scenario_name=scenario.name if scenario is not None else None,
    )


def run_setting(
    policy_name: str,
    setting_name: str,
    *,
    num_requests: int = 120,
    seed: int = 42,
    **config_overrides,
) -> RunSummary:
    """Convenience wrapper returning only the :class:`RunSummary`."""
    config = ExperimentConfig(num_requests=num_requests, seed=seed).with_overrides(
        **config_overrides
    )
    return run_experiment(policy_name, setting_name, config=config).summary


def run_matrix(
    policies: Iterable[SchedulingPolicy | str] = DEFAULT_POLICIES,
    settings: Iterable[WorkloadSetting | str] = tuple(WORKLOAD_SETTINGS),
    *,
    config: ExperimentConfig | None = None,
    n_jobs: int | None = 1,
    store: "ResultStore | str | None" = None,
    summary_only: bool = False,
) -> dict[tuple[str, str], RunResult]:
    """Run every (setting, policy) pair on identical workloads.

    Returns a mapping keyed by ``(setting_name, policy_name)``.  Requests are
    regenerated per policy from the same seed (each request object carries
    mutable runtime state, so they cannot be shared across runs) — the
    arrival times and application picks are identical.

    ``n_jobs`` controls parallelism: 1 (default) runs in-process; larger
    values fan the independent cells out across worker processes (``None``
    or 0 uses every core).  Summaries are identical either way because each
    run is fully determined by its seed.  Parallel execution requires
    policies given as *names* — live policy objects cannot be rebuilt in a
    worker; use :class:`repro.experiments.engine.RunSpec` overrides instead.

    ``store`` (a :class:`~repro.experiments.store.ResultStore` or path)
    makes repeat matrices incremental: cells whose summary is cached load
    without simulating (when ``summary_only=True``), and executed cells
    persist their summaries for the next caller.  Like parallelism, it
    requires policies given as names.
    """
    # Imported here because engine builds on this module's primitives.
    from repro.experiments.engine import ExperimentEngine, RunSpec, resolve_n_jobs

    config = config or ExperimentConfig()
    policy_list = list(policies)
    setting_objs = [
        WORKLOAD_SETTINGS[s] if isinstance(s, str) else s for s in settings
    ]
    if all(isinstance(p, str) for p in policy_list):
        specs = [
            RunSpec(
                policy=policy,
                setting=setting,
                config=config,
                summary_only=summary_only,
            )
            for setting in setting_objs
            for policy in policy_list
        ]
        return ExperimentEngine(n_jobs, store=store).run_keyed(specs)

    if store is not None or summary_only:
        raise ValueError(
            "run_matrix with store= or summary_only= requires policy names "
            "(strings); live policy objects bypass the spec-keyed cache"
        )
    if resolve_n_jobs(n_jobs) != 1:
        raise ValueError(
            "run_matrix with n_jobs != 1 requires policy names (strings); "
            "live policy objects cannot be shipped to worker processes"
        )
    # Same guarantee as ExperimentEngine.run_keyed, checked before any
    # simulation runs: never let two matrix cells silently overwrite.
    # (Names only are taken from these throwaway builds — the loop below
    # still constructs a fresh policy per cell for string entries, because
    # policies accumulate run state.)
    duplicates = find_duplicates(
        (make_policy(policy) if isinstance(policy, str) else policy).name
        for policy in policy_list
    )
    if duplicates:
        raise ValueError(
            "run_matrix would silently overwrite result cells for duplicate "
            f"policy names: {', '.join(repr(n) for n in duplicates)}; "
            "give each policy variant a distinct name"
        )
    duplicate_settings = find_duplicates(setting.name for setting in setting_objs)
    if duplicate_settings:
        raise ValueError(
            "run_matrix would silently overwrite result cells for duplicate "
            f"setting names: {', '.join(repr(n) for n in duplicate_settings)}; "
            "give each setting a distinct name"
        )
    profile_store = build_profile_store(config.space)
    results: dict[tuple[str, str], RunResult] = {}
    for setting_obj in setting_objs:
        for policy in policy_list:
            policy_obj = make_policy(policy) if isinstance(policy, str) else policy
            result = run_experiment(
                policy_obj,
                setting_obj,
                config=config,
                profile_store=profile_store,
            )
            results[(setting_obj.name, policy_obj.name)] = result
    return results


def run_scenario_matrix(
    scenarios: Iterable[Scenario | str],
    policies: Iterable[str] = DEFAULT_POLICIES,
    *,
    config: ExperimentConfig | None = None,
    n_jobs: int | None = 1,
    summary_only: bool = False,
    store: "ResultStore | str | None" = None,
) -> dict[tuple[str, str], RunResult]:
    """Run every (scenario, policy) pair; key results by those names.

    The scenario axis generalises :func:`run_matrix`'s setting axis: each
    cell's workload is the scenario's full demand bundle (applications x
    setting x arrival process x horizon), identical for every policy in the
    row.  Scenarios may be registered names or ad-hoc (even unregistered)
    :class:`~repro.workloads.scenarios.Scenario` objects; either way the
    resolved object travels inside the spec, so worker processes never
    depend on registry state.  Parallelism and determinism follow the
    engine's rules — results are byte-identical for any ``n_jobs``.
    ``store`` adds incremental re-runs (see :func:`run_matrix`): with
    ``summary_only=True`` a repeat matrix over an unchanged grid executes
    zero simulations.
    """
    from repro.experiments.engine import ExperimentEngine, RunSpec

    config = config or ExperimentConfig()
    scenario_list = list(scenarios)
    policy_list = list(policies)
    if not all(isinstance(p, str) for p in policy_list):
        raise ValueError("run_scenario_matrix requires policy names (strings)")
    specs = [
        RunSpec(
            policy=policy, scenario=scenario, config=config, summary_only=summary_only
        )
        for scenario in scenario_list
        for policy in policy_list
    ]
    return ExperimentEngine(n_jobs, store=store).run_keyed(specs)


# Mapping helpers used by several figure modules -------------------------------
def summaries_by_policy(
    results: Mapping[tuple[str, str], RunResult], setting_name: str
) -> dict[str, RunSummary]:
    """Extract ``policy -> summary`` for one setting from a matrix result."""
    return {
        policy: result.summary
        for (setting, policy), result in results.items()
        if setting == setting_name
    }


__all__.append("summaries_by_policy")
