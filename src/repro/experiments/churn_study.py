"""Churn study: how each scheduler degrades when the cluster churns.

The paper evaluates ESG on a fixed 16-node testbed; serverless platforms
increasingly run on harvested/spot capacity that resizes and disappears
mid-run (Harvest VMs, SOSP'21).  This figure-style experiment runs every
policy on identical workloads over a static baseline and three dynamic
clusters of increasing hostility:

* ``paper-moderate-normal`` — the static-cluster anchor row,
* ``harvest-mild-normal`` — capacity drift, mostly resizes,
* ``harvest-severe-normal`` — deep resizes plus node losses (requeue),
* ``churn-eviction-fail`` — leave-heavy churn where evicted in-flight
  requests fail terminally.

Each row reports the churn-specific counters next to the paper's headline
metrics, so the cost of capacity churn (and of the two eviction policies)
is readable straight off the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.experiments.store import ResultStore

from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    RunResult,
    run_scenario_matrix,
)

__all__ = [
    "CHURN_STUDY_SCENARIOS",
    "ChurnCell",
    "run_churn_study",
    "churn_rows",
    "render_churn_study",
]

#: Scenario rows of the study, static anchor first.
CHURN_STUDY_SCENARIOS: tuple[str, ...] = (
    "paper-moderate-normal",
    "harvest-mild-normal",
    "harvest-severe-normal",
    "churn-eviction-fail",
)


@dataclass(frozen=True)
class ChurnCell:
    """One (scenario, policy) cell of the churn study, flattened for rendering."""

    scenario: str
    policy: str
    slo_hit_rate: float
    total_cost_cents: float
    num_completed: int
    num_evicted: int
    evicted_tasks: int
    requeued_jobs: int


def run_churn_study(
    scenarios: Iterable[str] = CHURN_STUDY_SCENARIOS,
    policies: Iterable[str] = DEFAULT_POLICIES,
    *,
    config: ExperimentConfig | None = None,
    n_jobs: int | None = 1,
    store: "ResultStore | str | None" = None,
) -> dict[tuple[str, str], RunResult]:
    """Run ``policies`` x ``scenarios`` on identical per-scenario workloads.

    Every policy in a row sees the same seed-derived request stream *and*
    the same seed-derived churn timeline, so differences within a row are
    attributable to scheduling alone — the paper's methodology extended to
    the capacity axis.  The study is summary-only, so with a ``store`` a
    repeat render over an unchanged grid executes zero simulations.
    """
    return run_scenario_matrix(
        list(scenarios),
        policies,
        config=config,
        n_jobs=n_jobs,
        summary_only=True,
        store=store,
    )


def churn_rows(results: Mapping[tuple[str, str], RunResult]) -> list[ChurnCell]:
    """Flatten keyed study results into renderable cells (input order)."""
    return [
        ChurnCell(
            scenario=scenario,
            policy=policy,
            slo_hit_rate=result.summary.slo_hit_rate,
            total_cost_cents=result.summary.total_cost_cents,
            num_completed=result.summary.num_completed,
            num_evicted=result.summary.num_evicted,
            evicted_tasks=result.summary.evicted_tasks,
            requeued_jobs=result.summary.requeued_jobs,
        )
        for (scenario, policy), result in results.items()
    ]


def render_churn_study(rows: list[ChurnCell]) -> str:
    """Aligned text table of the churn study."""
    table_rows = [
        [
            cell.scenario,
            cell.policy,
            format_percent(cell.slo_hit_rate),
            f"{cell.total_cost_cents:.2f}",
            cell.num_completed,
            cell.num_evicted,
            cell.evicted_tasks,
            cell.requeued_jobs,
        ]
        for cell in rows
    ]
    return format_table(
        [
            "scenario",
            "policy",
            "SLO hit",
            "cost (c)",
            "done",
            "evicted",
            "evicted tasks",
            "requeued jobs",
        ],
        table_rows,
        title="Churn study (identical workloads and churn timelines per scenario row)",
    )
