"""Experiment harness regenerating every table and figure of the paper.

Each module exposes a ``run_*`` function returning plain data rows plus a
``render_*`` helper producing the text table/series printed by the
benchmarks.  The mapping from paper artefacts to modules is documented in
DESIGN.md (per-experiment index) and summarised here:

==============  ==========================================
artefact        module
==============  ==========================================
Tables 1-3      :mod:`repro.experiments.tables`
Figure 5        :mod:`repro.experiments.arrivals`
Figures 6-8     :mod:`repro.experiments.end_to_end`
Table 4         :mod:`repro.experiments.miss_rate`
Figure 9        :mod:`repro.experiments.orion_search`
Figure 10       :mod:`repro.experiments.overhead`
Figure 11/5.4   :mod:`repro.experiments.sensitivity`
Figure 12       :mod:`repro.experiments.ablation`
==============  ==========================================

All sweeps execute through :mod:`repro.experiments.engine`, which fans
independent runs out across worker processes when ``n_jobs > 1``.
"""

from repro.experiments.churn_study import (
    CHURN_STUDY_SCENARIOS,
    churn_rows,
    render_churn_study,
    run_churn_study,
)
from repro.experiments.engine import ExperimentEngine, RunSpec, execute_spec
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    WORKLOAD_MODES,
    ExperimentConfig,
    RunResult,
    build_profile_store,
    build_request_stream,
    build_requests,
    make_policy,
    run_experiment,
    run_matrix,
    run_scenario_matrix,
    run_setting,
)
from repro.experiments.scenario_sweep import (
    render_scenario_comparison,
    render_scenario_list,
    run_scenario_sweep,
    scenario_rows,
)
from repro.experiments.store import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    canonical_policy_key,
    spec_key,
    spec_key_doc,
)
from repro.experiments.sweep import (
    SweepCell,
    SweepReport,
    run_sweep,
    write_report_csv,
    write_report_json,
)

__all__ = [
    "CHURN_STUDY_SCENARIOS",
    "DEFAULT_POLICIES",
    "WORKLOAD_MODES",
    "ExperimentConfig",
    "ExperimentEngine",
    "ResultStore",
    "RunResult",
    "RunSpec",
    "STORE_SCHEMA_VERSION",
    "SweepCell",
    "SweepReport",
    "build_profile_store",
    "build_request_stream",
    "build_requests",
    "canonical_policy_key",
    "churn_rows",
    "execute_spec",
    "make_policy",
    "render_churn_study",
    "render_scenario_comparison",
    "render_scenario_list",
    "run_churn_study",
    "run_experiment",
    "run_matrix",
    "run_scenario_matrix",
    "run_scenario_sweep",
    "run_setting",
    "run_sweep",
    "scenario_rows",
    "spec_key",
    "spec_key_doc",
    "write_report_csv",
    "write_report_json",
]
