"""Figure 5: job arrival intervals under the three workload settings."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import format_table
from repro.utils.rng import derive_rng
from repro.utils.stats import summarize
from repro.workloads.generator import WORKLOAD_SETTINGS
from repro.workloads.traces import generate_intervals

__all__ = ["ArrivalDistribution", "run_figure5", "render_figure5"]


@dataclass(frozen=True)
class ArrivalDistribution:
    """Sampled arrival-interval distribution of one workload setting."""

    setting: str
    intervals_ms: tuple[float, ...]
    low_ms: float
    high_ms: float

    @property
    def mean_ms(self) -> float:
        """Mean sampled interval."""
        return float(np.mean(self.intervals_ms))

    @property
    def min_ms(self) -> float:
        """Smallest sampled interval."""
        return float(np.min(self.intervals_ms))

    @property
    def max_ms(self) -> float:
        """Largest sampled interval."""
        return float(np.max(self.intervals_ms))


def run_figure5(num_jobs: int = 400, seed: int = 42) -> list[ArrivalDistribution]:
    """Sample ``num_jobs`` arrival intervals for each workload setting."""
    out: list[ArrivalDistribution] = []
    for name, setting in WORKLOAD_SETTINGS.items():
        rng = derive_rng(seed, "figure5", name)
        intervals = generate_intervals(num_jobs, setting.intervals, rng)
        out.append(
            ArrivalDistribution(
                setting=name,
                intervals_ms=tuple(float(x) for x in intervals),
                low_ms=setting.intervals.low_ms,
                high_ms=setting.intervals.high_ms,
            )
        )
    return out


def render_figure5(distributions: list[ArrivalDistribution] | None = None) -> str:
    """Text rendering of Figure 5 (interval ranges and summary statistics)."""
    distributions = distributions or run_figure5()
    rows = []
    for dist in distributions:
        stats = summarize(list(dist.intervals_ms))
        rows.append(
            [
                dist.setting,
                dist.low_ms,
                dist.high_ms,
                stats.minimum,
                stats.mean,
                stats.maximum,
                stats.count,
            ]
        )
    return format_table(
        ["Setting", "Range low (ms)", "Range high (ms)", "Sampled min", "Sampled mean", "Sampled max", "Jobs"],
        rows,
        title="Figure 5: Job arrival intervals per workload setting",
    )
