"""Autoscale study: static EWMA prewarm vs feedback controllers.

The static prewarmer sizes resident containers from a fixed EWMA demand
model; the :mod:`repro.cluster.autoscale` controllers close the loop on
observed queue depth and arrival rate instead.  This figure-style
experiment runs one policy on identical workloads under three prewarm
regimes — static, threshold feedback, PID feedback — across the scenario
families where static sizing provably leaves money or SLOs on the table:

* ``diurnal-normal`` — sinusoidal rate drift (capacity lags the ramps),
* ``bursty-onoff-heavy`` — flash crowds over a light base rate,
* ``churn-eviction-storm`` — leave-heavy churn (controllers must respect
  tombstones while the cluster shrinks under them).

Every run starts from ``initial_warm="home"`` (one warm container per
function): the paper-default all-warm start has no cold starts at all, so
prewarm policy would be unobservable.  Rows report cost, SLO attainment
and the cold/warm split; :func:`dominating_modes` names the controllers
that *strictly dominate* the static row (better on one headline axis, at
least equal on the other) — the acceptance bar pinned by
``tests/experiments/test_autoscale_study.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.experiments.store import ResultStore

from repro.cluster.metrics import RunSummary
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import ExperimentConfig, RunResult
from repro.workloads.scenarios import Scenario

__all__ = [
    "AUTOSCALE_STUDY_MODES",
    "AUTOSCALE_STUDY_POLICY",
    "AUTOSCALE_STUDY_SCENARIOS",
    "AutoscaleCell",
    "autoscale_rows",
    "autoscale_study_config",
    "dominating_modes",
    "render_autoscale_study",
    "run_autoscale_study",
    "strictly_dominates",
]

#: Scenario rows of the study.
AUTOSCALE_STUDY_SCENARIOS: tuple[str, ...] = (
    "diurnal-normal",
    "bursty-onoff-heavy",
    "churn-eviction-storm",
)

#: Prewarm regimes compared in every scenario row: a display name and the
#: registered autoscale spec it runs under (``None`` = static prewarmer).
AUTOSCALE_STUDY_MODES: tuple[tuple[str, str | None], ...] = (
    ("static", None),
    ("threshold", "threshold-default"),
    ("pid", "pid-default"),
)

#: The study varies the prewarm regime, not the scheduler.
AUTOSCALE_STUDY_POLICY = "ESG"


@dataclass(frozen=True)
class AutoscaleCell:
    """One (scenario, mode) cell of the study, flattened for rendering."""

    scenario: str
    mode: str
    slo_hit_rate: float
    total_cost_cents: float
    cold_starts: int
    warm_starts: int
    num_completed: int
    num_evicted: int


def autoscale_study_config(config: ExperimentConfig | None = None) -> ExperimentConfig:
    """The study's run config: a cold-capable cluster.

    Pins ``initial_warm="home"`` (every other controller knob carries
    over): from the paper-default all-warm start no run ever cold-starts,
    so every prewarm regime would measure identically and the comparison
    would be vacuous.
    """
    config = config or ExperimentConfig()
    return config.with_overrides(
        controller=replace(config.controller, initial_warm="home")
    )


def run_autoscale_study(
    scenarios: Iterable[Scenario | str] = AUTOSCALE_STUDY_SCENARIOS,
    modes: Iterable[tuple[str, str | None]] = AUTOSCALE_STUDY_MODES,
    *,
    policy: str = AUTOSCALE_STUDY_POLICY,
    config: ExperimentConfig | None = None,
    n_jobs: int | None = 1,
    store: "ResultStore | str | None" = None,
) -> dict[tuple[str, str], RunResult]:
    """Run every (scenario, mode) cell; key results by those names.

    Every mode in a scenario row sees the same seed-derived request stream
    (and churn timeline, where the scenario has one): differences within a
    row are attributable to the prewarm regime alone.  Summary-only, so
    with a ``store`` a repeat render over an unchanged grid executes zero
    simulations.
    """
    from repro.experiments.engine import ExperimentEngine, RunSpec

    config = autoscale_study_config(config)
    specs = []
    keys: list[tuple[str, str]] = []
    for scenario in scenarios:
        scenario_name = scenario if isinstance(scenario, str) else scenario.name
        for mode, spec_name in modes:
            cfg = config if spec_name is None else config.with_overrides(autoscale=spec_name)
            specs.append(
                RunSpec(
                    policy=policy,
                    scenario=scenario,
                    config=cfg,
                    summary_only=True,
                    label=f"{scenario_name}/{mode}",
                )
            )
            keys.append((scenario_name, mode))
    # Engine.run (not run_keyed): each (scenario, policy) pair appears once
    # per autoscale mode, which the keyed collision check would reject.
    results = ExperimentEngine(n_jobs, store=store).run(specs)
    return dict(zip(keys, results))


def strictly_dominates(adaptive: RunSummary, static: RunSummary) -> bool:
    """True when ``adaptive`` beats ``static`` on one headline axis without
    losing the other: lower cost at equal-or-better SLO attainment, or
    better SLO attainment at equal-or-lower cost."""
    return (
        adaptive.total_cost_cents < static.total_cost_cents
        and adaptive.slo_hit_rate >= static.slo_hit_rate
    ) or (
        adaptive.slo_hit_rate > static.slo_hit_rate
        and adaptive.total_cost_cents <= static.total_cost_cents
    )


def dominating_modes(
    results: Mapping[tuple[str, str], RunResult]
) -> dict[str, list[str]]:
    """Per scenario, the adaptive modes that strictly dominate the static row."""
    scenarios = sorted({scenario for scenario, _ in results})
    out: dict[str, list[str]] = {}
    for scenario in scenarios:
        static = results.get((scenario, "static"))
        if static is None:
            continue
        out[scenario] = sorted(
            mode
            for (row_scenario, mode), result in results.items()
            if row_scenario == scenario
            and mode != "static"
            and strictly_dominates(result.summary, static.summary)
        )
    return out


def autoscale_rows(results: Mapping[tuple[str, str], RunResult]) -> list[AutoscaleCell]:
    """Flatten keyed study results into renderable cells (input order)."""
    return [
        AutoscaleCell(
            scenario=scenario,
            mode=mode,
            slo_hit_rate=result.summary.slo_hit_rate,
            total_cost_cents=result.summary.total_cost_cents,
            cold_starts=result.summary.cold_starts,
            warm_starts=result.summary.warm_starts,
            num_completed=result.summary.num_completed,
            num_evicted=result.summary.num_evicted,
        )
        for (scenario, mode), result in results.items()
    ]


def render_autoscale_study(
    rows: list[AutoscaleCell],
    *,
    dominance: Mapping[str, list[str]] | None = None,
) -> str:
    """Aligned text table; dominating modes are marked with an asterisk."""
    table_rows = [
        [
            cell.scenario,
            cell.mode
            + (
                " *"
                if dominance is not None and cell.mode in dominance.get(cell.scenario, ())
                else ""
            ),
            format_percent(cell.slo_hit_rate),
            f"{cell.total_cost_cents:.2f}",
            cell.cold_starts,
            cell.warm_starts,
            cell.num_completed,
            cell.num_evicted,
        ]
        for cell in rows
    ]
    table = format_table(
        [
            "scenario",
            "prewarm",
            "SLO hit",
            "cost (c)",
            "cold",
            "warm",
            "done",
            "evicted",
        ],
        table_rows,
        title="Autoscale study (identical workloads per scenario row; initial_warm=home)",
    )
    if dominance is not None:
        table += "\n* strictly dominates the static row (cost and SLO axes)"
    return table
