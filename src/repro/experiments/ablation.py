"""Figure 12: ablation of the GPU-sharing and batching strategies.

"We individually removed either the GPU-sharing or batching strategy from
ESG and contrasted the results with the original ESG.  We set a heavy
workload in this experiment specifically to underline the effects of the
batching strategy."  Expected shape: without GPU sharing, waiting times grow
substantially (jobs queue for whole GPUs) and SLO hit rates drop; without
batching the cost rises while hit rates stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.experiments.store import ResultStore

from repro.core.esg import ESGPolicy
from repro.experiments.engine import ExperimentEngine, RunSpec, resolve_n_jobs
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import ExperimentConfig, run_experiment

__all__ = [
    "AblationRow",
    "ablation_variants",
    "ablation_variant_overrides",
    "run_figure12",
    "render_figure12",
]


@dataclass(frozen=True)
class AblationRow:
    """Results of one ESG variant in the ablation study."""

    variant: str
    slo_hit_rate: float
    total_cost_cents: float
    cost_normalized_to_esg: float
    mean_waiting_ms: float
    mean_latency_ms: float
    total_vgpu_ms: float


def ablation_variant_overrides() -> dict[str, dict[str, object]]:
    """ESG constructor overrides of each Figure 12 variant (picklable form)."""
    return {
        "ESG": {},
        "ESG w/o GPU sharing": {"gpu_sharing": False, "name": "ESG w/o GPU sharing"},
        "ESG w/o batching": {"batching": False, "name": "ESG w/o batching"},
    }


def ablation_variants() -> dict[str, ESGPolicy]:
    """The three ESG variants of the Figure 12 ablation."""
    return {
        label: ESGPolicy(**overrides)
        for label, overrides in ablation_variant_overrides().items()
    }


def run_figure12(
    *,
    setting: str = "relaxed-heavy",
    config: ExperimentConfig | None = None,
    variants: Iterable[tuple[str, ESGPolicy]] | None = None,
    n_jobs: int | None = 1,
    store: "ResultStore | str | None" = None,
) -> list[AblationRow]:
    """Run the ablation study under a heavy workload.

    The default variant set runs through the experiment engine (so
    ``n_jobs`` parallelises it, and a ``store`` makes repeat renders load
    every cached cell — the variant *label* stays out of the cache key;
    the constructor overrides that define the variant are what hash);
    passing live policy objects via ``variants`` forces the sequential
    in-process path (no caching).
    """
    config = config or ExperimentConfig()
    if variants is None:
        specs = [
            RunSpec(
                policy="ESG",
                setting=setting,
                config=config,
                policy_overrides=overrides,
                label=label,
                summary_only=True,
            )
            for label, overrides in ablation_variant_overrides().items()
        ]
        labels = [spec.label for spec in specs]
        summaries = [r.summary for r in ExperimentEngine(n_jobs, store=store).run(specs)]
    else:
        items = list(variants)
        if store is not None:
            raise ValueError(
                "run_figure12 with store= requires the default variants; "
                "live policy objects bypass the spec-keyed cache"
            )
        if resolve_n_jobs(n_jobs) != 1:
            raise ValueError(
                "run_figure12 with n_jobs != 1 requires the default variants; "
                "live policy objects cannot be shipped to worker processes"
            )
        labels = [label for label, _ in items]
        summaries = [
            run_experiment(policy, setting, config=config).summary for _, policy in items
        ]
    raw = [
        (
            label,
            summary.slo_hit_rate,
            summary.total_cost_cents,
            summary.mean_waiting_ms,
            summary.mean_latency_ms,
            summary.total_vgpu_ms,
        )
        for label, summary in zip(labels, summaries)
    ]
    esg_cost = next((cost for label, _, cost, _, _, _ in raw if label == "ESG"), None)
    rows: list[AblationRow] = []
    for label, hit, cost, wait, latency, vgpu_ms in raw:
        rows.append(
            AblationRow(
                variant=label,
                slo_hit_rate=hit,
                total_cost_cents=cost,
                cost_normalized_to_esg=(cost / esg_cost if esg_cost else float("nan")),
                mean_waiting_ms=wait,
                mean_latency_ms=latency,
                total_vgpu_ms=vgpu_ms,
            )
        )
    return rows


def render_figure12(rows: list[AblationRow]) -> str:
    """Text rendering of Figure 12."""
    table_rows = [
        [
            r.variant,
            format_percent(r.slo_hit_rate),
            r.total_cost_cents,
            r.cost_normalized_to_esg,
            r.mean_waiting_ms,
            r.mean_latency_ms,
        ]
        for r in rows
    ]
    return format_table(
        ["Variant", "SLO hit rate", "Cost (cents)", "Cost / ESG", "Mean waiting (ms)", "Mean latency (ms)"],
        table_rows,
        title="Figure 12: GPU-sharing and batching ablation (heavy workload)",
    )
