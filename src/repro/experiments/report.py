"""Plain-text rendering helpers for experiment outputs.

The benchmarks print each reproduced table/figure as an aligned text table;
keeping the rendering here means the ``run_*`` functions can stay pure data
producers (easy to test) while benches and the CLI share one formatter.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_percent", "format_series"]


def format_percent(value: float, digits: int = 1) -> str:
    """Format a 0-1 fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_digits: int = 3,
) -> str:
    """Render an aligned text table.

    Floats are formatted with ``float_digits`` decimals; everything else via
    ``str``.  Columns are padded to the widest cell.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return f"{cell:.{float_digits}f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    str_headers = [str(h) for h in headers]
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(str_headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(str_headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def format_series(
    name: str, points: Mapping[object, float] | Sequence[tuple[object, float]], *, digits: int = 3
) -> str:
    """Render a named (x, y) series on one line, e.g. for figure curves."""
    if isinstance(points, Mapping):
        items = list(points.items())
    else:
        items = list(points)
    body = ", ".join(f"{x}: {y:.{digits}f}" for x, y in items)
    return f"{name}: {body}"
