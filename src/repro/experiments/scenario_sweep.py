"""Scenario sweeps: compare every policy on every named scenario.

The paper's evaluation fixes the demand side to three Azure-derived
settings; this module sweeps the policies over the scenario registry
instead — bursty, diurnal, trace-replay and non-paper application mixes —
turning "how does each scheduler cope with demand the paper never showed
it?" into one function call (or ``esg-repro compare --scenario ...``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.experiments.store import ResultStore

from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    RunResult,
    run_scenario_matrix,
)
from repro.workloads.scenarios import SCENARIOS, Scenario, ScenarioRegistry

__all__ = [
    "ScenarioCell",
    "compare_on_scenarios",
    "run_scenario_sweep",
    "scenario_rows",
    "render_scenario_comparison",
    "render_scenario_list",
]


@dataclass(frozen=True)
class ScenarioCell:
    """One (scenario, policy) cell of a sweep, flattened for rendering."""

    scenario: str
    policy: str
    slo_hit_rate: float
    total_cost_cents: float
    mean_latency_ms: float
    num_completed: int
    truncated: bool


def run_scenario_sweep(
    scenarios: Iterable[Scenario | str] | None = None,
    policies: Iterable[str] = DEFAULT_POLICIES,
    *,
    config: ExperimentConfig | None = None,
    n_jobs: int | None = 1,
    store: "ResultStore | str | None" = None,
) -> dict[tuple[str, str], RunResult]:
    """Run ``policies`` x ``scenarios`` (default: the whole registry).

    Summary-only: with a ``store``, repeat sweeps load every cached cell.
    """
    if scenarios is None:
        scenarios = SCENARIOS.names()
    return run_scenario_matrix(
        scenarios,
        policies,
        config=config,
        n_jobs=n_jobs,
        summary_only=True,
        store=store,
    )


def scenario_rows(results: Mapping[tuple[str, str], RunResult]) -> list[ScenarioCell]:
    """Flatten keyed sweep results into renderable cells (input order)."""
    return [
        ScenarioCell(
            scenario=scenario,
            policy=policy,
            slo_hit_rate=result.summary.slo_hit_rate,
            total_cost_cents=result.summary.total_cost_cents,
            mean_latency_ms=result.summary.mean_latency_ms,
            num_completed=result.summary.num_completed,
            truncated=result.summary.truncated,
        )
        for (scenario, policy), result in results.items()
    ]


def render_scenario_comparison(rows: list[ScenarioCell]) -> str:
    """Aligned text table of a scenario sweep."""
    table_rows = [
        [
            cell.scenario,
            cell.policy,
            format_percent(cell.slo_hit_rate),
            f"{cell.total_cost_cents:.2f}",
            f"{cell.mean_latency_ms:.0f}",
            cell.num_completed,
            "yes" if cell.truncated else "no",
        ]
        for cell in rows
    ]
    return format_table(
        ["scenario", "policy", "SLO hit", "cost (c)", "mean lat (ms)", "done", "truncated"],
        table_rows,
        title="Scenario comparison (every policy on identical per-scenario workloads)",
    )


def render_scenario_list(registry: ScenarioRegistry | None = None) -> str:
    """The table behind ``esg-repro --list-scenarios``."""
    registry = registry if registry is not None else SCENARIOS
    rows = []
    for scenario in registry:
        apps = "paper (4)" if scenario.applications is None else f"{len(scenario.applications)} custom"
        horizon = "-" if scenario.horizon_ms is None else f"{scenario.horizon_ms:.0f} ms"
        rows.append(
            [
                scenario.name,
                scenario.setting,
                scenario.arrival_label,
                f"{scenario.mean_rate_per_s():.1f}/s",
                apps,
                horizon,
                scenario.description,
            ]
        )
    return format_table(
        ["scenario", "setting", "arrivals", "mean rate", "apps", "horizon", "description"],
        rows,
        title=f"Registered scenarios ({len(registry)})",
    )


def compare_on_scenarios(
    scenario_names: Iterable[str],
    *,
    config: ExperimentConfig | None = None,
    n_jobs: int | None = 1,
    store: "ResultStore | str | None" = None,
) -> str:
    """End-to-end helper for the CLI: sweep, flatten, render.

    Typos fail fast: spec construction resolves each name eagerly.
    """
    results = run_scenario_sweep(
        list(scenario_names), config=config, n_jobs=n_jobs, store=store
    )
    return render_scenario_comparison(scenario_rows(results))
