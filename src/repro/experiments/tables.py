"""Tables 1-3 of the paper (feature matrix, testbed, function profiles).

These tables are definitional rather than measured, but regenerating them
from the code base documents that the reproduction's configuration matches
the paper (and the tests assert the Table 3 numbers are intact).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import ClusterConfig
from repro.experiments.report import format_table
from repro.profiles.specs import FUNCTION_SPECS

__all__ = [
    "Table1Row",
    "table1_feature_matrix",
    "render_table1",
    "table2_testbed",
    "render_table2",
    "Table3Row",
    "table3_functions",
    "render_table3",
]


# ----------------------------------------------------------------------
# Table 1: comparison of serverless systems
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    """One feature row of the comparison matrix."""

    feature: str
    infless: bool
    fastgshare: bool
    orion: bool
    aquatope: bool
    esg: bool


def table1_feature_matrix() -> list[Table1Row]:
    """The feature matrix of Table 1."""
    return [
        Table1Row("GPU sharing", True, True, False, False, True),
        Table1Row("Inter-function relation", False, False, True, True, True),
        Table1Row("Adaptive scheduling", True, True, False, False, True),
        Table1Row("Data locality", False, False, False, False, True),
        Table1Row("Pre-warming", True, False, True, True, True),
    ]


def render_table1() -> str:
    """Text rendering of Table 1."""
    rows = [
        [r.feature, _mark(r.infless), _mark(r.fastgshare), _mark(r.orion), _mark(r.aquatope), _mark(r.esg)]
        for r in table1_feature_matrix()
    ]
    return format_table(
        ["Feature", "INFless", "FaST-GShare", "Orion", "Aquatope", "ESG"],
        rows,
        title="Table 1: Comparison of serverless systems",
    )


def _mark(value: bool) -> str:
    return "yes" if value else "no"


# ----------------------------------------------------------------------
# Table 2: testbed configuration
# ----------------------------------------------------------------------
def table2_testbed(cluster: ClusterConfig | None = None) -> dict[str, str]:
    """The emulated testbed configuration (Table 2 equivalent)."""
    cluster = cluster or ClusterConfig()
    return {
        "Nodes": str(cluster.num_invokers),
        "vCPUs per node": str(cluster.vcpus_per_invoker),
        "GPUs per node": "1 (A100-class, MIG-partitioned)",
        "vGPUs per node (MIG instances)": str(cluster.vgpus_per_invoker),
        "Total vCPUs": str(cluster.total_vcpus),
        "Total vGPUs": str(cluster.total_vgpus),
        "Container keep-alive": f"{cluster.keep_alive_ms / 60000.0:.0f} minutes",
    }


def render_table2(cluster: ClusterConfig | None = None) -> str:
    """Text rendering of the testbed table."""
    rows = [[k, v] for k, v in table2_testbed(cluster).items()]
    return format_table(["Item", "Value"], rows, title="Table 2: Emulated testbed configuration")


# ----------------------------------------------------------------------
# Table 3: serverless functions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table3Row:
    """One function row of Table 3."""

    function: str
    exec_time_ms: float
    cold_start_ms: float
    input_mb: float
    model: str


def table3_functions() -> list[Table3Row]:
    """The six DNN serverless functions with their Table 3 measurements."""
    order = [
        "super_resolution",
        "segmentation",
        "deblur",
        "classification",
        "background_removal",
        "depth_recognition",
    ]
    rows = []
    for name in order:
        spec = FUNCTION_SPECS[name]
        rows.append(
            Table3Row(
                function=name,
                exec_time_ms=spec.base_exec_ms,
                cold_start_ms=spec.cold_start_ms,
                input_mb=spec.input_mb,
                model=spec.model_name,
            )
        )
    return rows


def render_table3() -> str:
    """Text rendering of Table 3."""
    rows = [
        [r.function, r.exec_time_ms, r.cold_start_ms, r.input_mb, r.model]
        for r in table3_functions()
    ]
    return format_table(
        ["Function", "Exec time (ms)", "Cold start (ms)", "Input (MB)", "Model"],
        rows,
        title="Table 3: Serverless functions",
    )
