"""Figure 9: effect of Orion's search time on its SLO hit rate (strict-light).

Orion trades search time for configuration quality: with a generous cutoff
its best-first search finds decent configurations, but once the search time
is charged against the request latency the hit rate collapses.  The sweep
runs the strict-light workload with Orion under several cutoff values,
twice — once charging the search overhead and once ignoring it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.experiments.store import ResultStore

from repro.experiments.engine import ExperimentEngine, RunSpec
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import ExperimentConfig

__all__ = ["OrionSearchPoint", "run_figure9", "render_figure9", "DEFAULT_CUTOFFS_MS"]

#: The cutoff values on the x-axis of Figure 9.
DEFAULT_CUTOFFS_MS: tuple[float, ...] = (1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 2000.0)


@dataclass(frozen=True)
class OrionSearchPoint:
    """One point of one Figure 9 curve."""

    cutoff_ms: float
    count_search_overhead: bool
    slo_hit_rate: float
    total_cost_cents: float
    mean_overhead_ms: float


def run_figure9(
    cutoffs_ms: Sequence[float] = DEFAULT_CUTOFFS_MS,
    *,
    setting: str = "strict-light",
    config: ExperimentConfig | None = None,
    n_jobs: int | None = 1,
    store: "ResultStore | str | None" = None,
) -> list[OrionSearchPoint]:
    """Sweep Orion's search cutoff with and without charging the overhead.

    Summary-only: with a ``store``, repeat renders load every cached cell.
    """
    config = config or ExperimentConfig()
    sweep = [
        (cutoff, count_overhead)
        for count_overhead in (False, True)
        for cutoff in cutoffs_ms
    ]
    specs = [
        RunSpec(
            policy="Orion",
            setting=setting,
            config=config,
            policy_overrides={"cutoff_ms": cutoff, "count_search_overhead": count_overhead},
            summary_only=True,
        )
        for cutoff, count_overhead in sweep
    ]
    results = ExperimentEngine(n_jobs, store=store).run(specs)
    return [
        OrionSearchPoint(
            cutoff_ms=cutoff,
            count_search_overhead=count_overhead,
            slo_hit_rate=result.summary.slo_hit_rate,
            total_cost_cents=result.summary.total_cost_cents,
            mean_overhead_ms=result.summary.mean_overhead_ms,
        )
        for (cutoff, count_overhead), result in zip(sweep, results)
    ]


def render_figure9(points: list[OrionSearchPoint]) -> str:
    """Text rendering of Figure 9 (two curves over the cutoff values)."""
    rows = [
        [
            p.cutoff_ms,
            "with overhead" if p.count_search_overhead else "w/o overhead",
            format_percent(p.slo_hit_rate),
            p.mean_overhead_ms,
            p.total_cost_cents,
        ]
        for p in sorted(points, key=lambda p: (p.count_search_overhead, p.cutoff_ms))
    ]
    return format_table(
        ["Search cutoff (ms)", "Curve", "SLO hit rate", "Mean overhead (ms)", "Cost (cents)"],
        rows,
        title="Figure 9: Orion search-time vs. SLO hit rate (strict-light)",
    )
