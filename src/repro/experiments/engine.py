"""Parallel experiment engine: picklable run specs and a process-pool executor.

Every experiment run in this repository is seed-deterministic and mutually
independent — a (policy, setting, config) triple fully determines its
:class:`~repro.cluster.metrics.RunSummary`.  That makes sweeps
embarrassingly parallel: a :class:`RunSpec` captures one run as plain
picklable data (policy *name* plus constructor overrides, never a live
policy object), and an :class:`ExperimentEngine` executes a batch of specs
either in-process (``n_jobs=1``, the debuggable default) or across a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Each worker process rebuilds the :class:`~repro.profiles.profiler.ProfileStore`
once per configuration space and caches it for the specs it executes
(profiling is deterministic, and policies only read the store).  Results
come back in spec order with summaries identical to the sequential path.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

from repro.cluster.metrics import MetricsCollector, MetricsConfig
from repro.cluster.policy_api import SchedulingPolicy
from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    build_profile_store,
    make_policy,
    run_experiment,
)
from repro.experiments.store import ResultStore
from repro.profiles.configuration import ConfigurationSpace
from repro.profiles.profiler import ProfileStore
from repro.utils.validation import find_duplicates
from repro.workloads.generator import WORKLOAD_SETTINGS, WorkloadSetting
from repro.workloads.scenarios import Scenario, get_scenario

__all__ = ["CellCallback", "RunSpec", "ExperimentEngine", "execute_spec", "resolve_n_jobs"]

#: Progress hook invoked in the parent process once per finished cell:
#: ``on_cell(index, spec, result, cached)`` — ``cached`` is True when the
#: result was served from the engine's :class:`ResultStore` without running
#: a simulation.  Cached cells report first (in spec order), then executed
#: cells in completion order.
CellCallback = Callable[[int, "RunSpec", "RunResult", bool], None]


@dataclass(frozen=True)
class RunSpec:
    """A self-contained, picklable description of one simulated run.

    The policy is stored by *name* (plus keyword overrides for its
    constructor) rather than as an instance: policies accumulate run state,
    so shipping a fresh build recipe to each worker is both safer and
    cheaper than pickling live objects.  The workload side is either a bare
    ``setting`` name (paper arrivals, paper applications) or a ``scenario``
    — a registered name or a :class:`~repro.workloads.scenarios.Scenario`
    object — exactly one of the two must be given.
    """

    policy: str
    setting: str | WorkloadSetting | None = None
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    policy_overrides: Mapping[str, object] = field(default_factory=dict)
    #: Optional bookkeeping label (e.g. an ablation variant name).
    label: str | None = None
    #: When True the run executes with a *streaming* metrics collector and
    #: a *streaming* workload (no request/task object is ever materialised
    #: in the worker — arrivals are pulled lazily from a RequestStream) and
    #: the result carries only the :class:`RunSummary` plus an explicit
    #: placeholder collector (``metrics.placeholder`` is True, counters and
    #: ``truncated`` mirror the summary): sweeps that read a few summary
    #: scalars avoid both worker-side retention and shipping request
    #: objects over IPC.
    summary_only: bool = False
    #: A registered scenario name or a :class:`Scenario` object (mutually
    #: exclusive with ``setting``).  Names are resolved against the global
    #: registry at construction time and the resolved *object* is stored:
    #: scenarios are picklable by design, so the spec carries the full
    #: demand bundle to workers — spawn workers never consult their own
    #: (possibly empty) registry, and ad-hoc unregistered scenarios work.
    scenario: str | Scenario | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.policy, str):
            raise TypeError(
                "RunSpec.policy must be a policy name; pass constructor arguments "
                f"via policy_overrides (got {type(self.policy).__name__})"
            )
        if self.scenario is not None:
            if self.setting is not None:
                raise ValueError(
                    "RunSpec takes a setting or a scenario, not both "
                    f"(got setting={self.setting!r}, scenario={self.scenario!r})"
                )
            if isinstance(self.scenario, str):
                # Resolve eagerly: a typo fails at spec construction in the
                # parent process, and workers receive the resolved object.
                object.__setattr__(self, "scenario", get_scenario(self.scenario))
        elif self.setting is None:
            raise ValueError("RunSpec needs a setting or a scenario")
        elif isinstance(self.setting, str) and self.setting not in WORKLOAD_SETTINGS:
            raise KeyError(
                f"unknown workload setting {self.setting!r}; "
                f"expected one of {', '.join(WORKLOAD_SETTINGS)}"
            )

    @property
    def setting_name(self) -> str:
        """Name of the workload setting this spec runs under."""
        if self.scenario is not None:
            return self.scenario.setting
        return self.setting if isinstance(self.setting, str) else self.setting.name

    @property
    def workload_name(self) -> str:
        """The scenario name when one is set, else the setting name."""
        return self.scenario.name if self.scenario is not None else self.setting_name

    def build_policy(self) -> SchedulingPolicy:
        """Instantiate a fresh policy from the stored name and overrides."""
        return make_policy(self.policy, **dict(self.policy_overrides))


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
#: Per-process cache: profiling a configuration space is deterministic and
#: policies only read the store, so one build per (worker, space) suffices.
_PROFILE_STORE_CACHE: dict[ConfigurationSpace, ProfileStore] = {}


def _profile_store_for(space: ConfigurationSpace) -> ProfileStore:
    store = _PROFILE_STORE_CACHE.get(space)
    if store is None:
        store = build_profile_store(space)
        _PROFILE_STORE_CACHE[space] = store
    return store


def execute_spec(spec: RunSpec) -> RunResult:
    """Execute one spec and return its full result.

    Module-level (not a method) so it is picklable as a process-pool task.

    ``summary_only`` specs run with a *streaming* metrics collector — the
    worker folds every observation into accumulators at record time instead
    of materialising request/task lists it would only throw away — and a
    *streaming* workload, so the request list is never materialised either:
    the simulator pulls arrivals from a lazy
    :class:`~repro.workloads.stream.RequestStream`.  Summaries are
    byte-identical across both mode axes, so this is purely a memory
    optimisation.  The result's ``metrics`` is an explicit placeholder
    (:meth:`MetricsCollector.placeholder_from_summary`) whose counters and
    ``truncated`` flag agree with the attached summary.
    """
    config = spec.config
    if spec.summary_only:
        upgrades: dict[str, object] = {}
        if config.metrics.mode != "streaming":
            upgrades["metrics"] = MetricsConfig(mode="streaming")
        if config.workload_mode != "streaming":
            upgrades["workload_mode"] = "streaming"
        if upgrades:
            config = config.with_overrides(**upgrades)
    store = _profile_store_for(config.space)
    result = run_experiment(
        spec.build_policy(),
        spec.setting,
        config=config,
        profile_store=store,
        scenario=spec.scenario,
    )
    if spec.summary_only:
        return RunResult(
            policy_name=result.policy_name,
            setting=result.setting,
            summary=result.summary,
            metrics=MetricsCollector.placeholder_from_summary(result.summary),
            requests=[],
            scenario_name=result.scenario_name,
        )
    return result


def _execute_spec_stored(item: tuple[RunSpec, str | None]) -> RunResult:
    """Worker task: execute one spec, persisting its summary when asked.

    Persistence happens *in the worker*, immediately after the run: an
    interrupted sweep keeps every completed cell, so ``--resume`` (or any
    re-run against the same store) only pays for the cells that were in
    flight or never started.  Writes are atomic, so concurrent workers —
    even two sweeps sharing one store — cannot tear an entry.
    """
    spec, store_root = item
    result = execute_spec(spec)
    if store_root is not None:
        ResultStore(store_root).put_summary(spec, result.summary)
    return result


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise a job count: ``None`` or ``<= 0`` means one per CPU core."""
    if n_jobs is None or n_jobs <= 0:
        return os.cpu_count() or 1
    return n_jobs


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class ExperimentEngine:
    """Executes batches of :class:`RunSpec`, optionally across processes.

    ``n_jobs=1`` (the default) runs every spec in the calling process —
    identical code path, fully debuggable.  ``n_jobs>1`` fans specs out to a
    :class:`ProcessPoolExecutor`; ``None`` or ``0`` uses one worker per CPU
    core.  Because every run is seed-deterministic, the returned results are
    identical to the sequential ones, in spec order.

    ``store`` (a :class:`~repro.experiments.store.ResultStore` or a path)
    adds the incremental-re-run discipline: before executing, specs are
    partitioned into **hits** — ``summary_only`` cells whose summary is
    already cached, loaded with no subprocess and no simulation — and
    **misses**, which are executed and then persisted (from inside the
    worker, so interrupted sweeps keep every finished cell).  Results are
    byte-identical either way; the store only changes *whether* a cell
    simulates, never what it returns.
    """

    def __init__(
        self,
        n_jobs: int | None = 1,
        *,
        mp_context: str | None = None,
        store: "ResultStore | str | Path | None" = None,
    ) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        self._mp_context = mp_context
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store

    @property
    def _store_root(self) -> str | None:
        return str(self.store.root) if self.store is not None else None

    def run(
        self, specs: Iterable[RunSpec], *, on_cell: CellCallback | None = None
    ) -> list[RunResult]:
        """Execute ``specs`` and return their results in spec order.

        ``on_cell`` is invoked in the calling process once per finished
        cell (cache hits first, then executions as they complete) — the
        hook behind the sweep CLI's live done/cached/running counters.
        """
        spec_list = list(specs)
        if not spec_list:
            return []
        results: list[RunResult | None] = [None] * len(spec_list)
        pending: list[int] = []
        for index, spec in enumerate(spec_list):
            cached = self.store.load_result(spec) if self.store is not None else None
            if cached is not None:
                results[index] = cached
                if on_cell is not None:
                    on_cell(index, spec, cached, True)
            else:
                pending.append(index)
        if pending:
            if self.n_jobs == 1:
                for index in pending:
                    result = _execute_spec_stored((spec_list[index], self._store_root))
                    results[index] = result
                    if on_cell is not None:
                        on_cell(index, spec_list[index], result, False)
            else:
                mp_context = None
                if self._mp_context is not None:
                    import multiprocessing

                    mp_context = multiprocessing.get_context(self._mp_context)
                workers = min(self.n_jobs, len(pending))
                with ProcessPoolExecutor(
                    max_workers=workers, mp_context=mp_context
                ) as pool:
                    futures = {
                        pool.submit(
                            _execute_spec_stored, (spec_list[index], self._store_root)
                        ): index
                        for index in pending
                    }
                    for future in as_completed(futures):
                        index = futures[future]
                        result = future.result()
                        results[index] = result
                        if on_cell is not None:
                            on_cell(index, spec_list[index], result, False)
        return results  # type: ignore[return-value]  # every slot is filled

    def run_keyed(self, specs: Iterable[RunSpec]) -> dict[tuple[str, str], RunResult]:
        """Execute ``specs``; key results by ``(workload_name, policy_name)``.

        The workload name is the scenario name for scenario specs and the
        setting name otherwise; the policy name is the *reported* one
        (``result.policy_name``), so overrides that rename a policy — e.g.
        ablation variants — key distinct cells.

        Two specs that map to the same cell would silently overwrite each
        other (a classic ablation-sweep footgun: two variants of a policy
        without a ``name`` override).  Colliding cells raise a
        :class:`ValueError` *before* any simulation runs — the reported name
        is determined by the spec's constructor overrides, so it can be
        checked by building the (cheap, unbound) policy objects up front.
        """
        spec_list = list(specs)
        keys = [(spec.workload_name, spec.build_policy().name) for spec in spec_list]
        collisions = find_duplicates(keys)
        if collisions:
            cells = ", ".join(f"({workload!r}, {policy!r})" for workload, policy in collisions)
            raise ValueError(
                "run_keyed would silently overwrite results for colliding "
                f"cells: {cells}; give each variant a distinct reported name "
                "via policy_overrides={'name': ...} (or distinct workloads)"
            )
        results = self.run(spec_list)
        keyed: dict[tuple[str, str], RunResult] = {}
        for spec, result in zip(spec_list, results):
            key = (spec.workload_name, result.policy_name)
            if key in keyed:
                # Defensive: a policy whose reported name diverges from its
                # construction-time name would bypass the pre-run check.
                raise ValueError(f"duplicate result cell {key!r}")
            keyed[key] = result
        return keyed
