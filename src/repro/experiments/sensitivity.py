"""Figure 11 and the Section 5.4 sensitivity studies.

* **K (configuration priority queue size)** — as K grows from 1 to 80 the
  paper observes the average search overhead rising from about 3 ms to 8 ms,
  the latency staying flat and the cost decreasing slightly (more fallback
  candidates let the dispatcher pick a cheaper configuration that actually
  fits).  Default K is 5.
* **Group size** — the maximum function-group size of the dominator-based
  SLO distribution.  With 256 configurations per function the paper reports
  the group search jumping to 1201 ms at size 4, which is why the default
  stays at 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.experiments.store import ResultStore

from repro.core.esg_1q import StageSearchSpec, esg_1q_search
from repro.experiments.engine import ExperimentEngine, RunSpec
from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import ExperimentConfig, build_profile_store
from repro.profiles.configuration import ConfigurationSpace
from repro.workloads.applications import expanded_image_classification

__all__ = [
    "KSensitivityPoint",
    "run_figure11",
    "render_figure11",
    "GroupSizeSearchPoint",
    "run_group_size_search",
    "render_group_size_search",
    "DEFAULT_K_VALUES",
]

#: K values swept in Figure 11.
DEFAULT_K_VALUES: tuple[int, ...] = (1, 5, 20, 40, 80)


@dataclass(frozen=True)
class KSensitivityPoint:
    """Results of one K value in the Figure 11 sweep."""

    k: int
    mean_overhead_ms: float
    mean_latency_ms: float
    total_cost_cents: float
    slo_hit_rate: float
    cost_normalized_to_k5: float = float("nan")


def run_figure11(
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    *,
    setting: str = "strict-light",
    config: ExperimentConfig | None = None,
    n_jobs: int | None = 1,
    store: "ResultStore | str | None" = None,
) -> list[KSensitivityPoint]:
    """Sweep the number of solutions K kept by ESG_1Q.

    Summary-only: with a ``store``, repeat renders load every cached cell.
    """
    config = config or ExperimentConfig()
    specs = [
        RunSpec(
            policy="ESG",
            setting=setting,
            config=config,
            policy_overrides={"k": k},
            summary_only=True,
        )
        for k in k_values
    ]
    results = ExperimentEngine(n_jobs, store=store).run(specs)
    raw = [
        KSensitivityPoint(
            k=k,
            mean_overhead_ms=result.summary.mean_overhead_ms,
            mean_latency_ms=result.summary.mean_latency_ms,
            total_cost_cents=result.summary.total_cost_cents,
            slo_hit_rate=result.summary.slo_hit_rate,
        )
        for k, result in zip(k_values, results)
    ]
    baseline = next((p.total_cost_cents for p in raw if p.k == 5), None)
    if baseline is None:
        baseline = raw[0].total_cost_cents if raw else float("nan")
    return [
        KSensitivityPoint(
            k=p.k,
            mean_overhead_ms=p.mean_overhead_ms,
            mean_latency_ms=p.mean_latency_ms,
            total_cost_cents=p.total_cost_cents,
            slo_hit_rate=p.slo_hit_rate,
            cost_normalized_to_k5=(p.total_cost_cents / baseline if baseline else float("nan")),
        )
        for p in raw
    ]


def render_figure11(points: list[KSensitivityPoint]) -> str:
    """Text rendering of Figure 11."""
    rows = [
        [
            p.k,
            p.mean_overhead_ms,
            p.mean_latency_ms,
            p.cost_normalized_to_k5,
            format_percent(p.slo_hit_rate),
        ]
        for p in points
    ]
    return format_table(
        ["K", "Mean overhead (ms)", "Mean latency (ms)", "Cost / K=5", "SLO hit rate"],
        rows,
        title="Figure 11: Sensitivity to K (strict-light)",
    )


# ----------------------------------------------------------------------
# Group size (Section 5.4)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GroupSizeSearchPoint:
    """ESG_1Q search time for one function-group size."""

    group_size: int
    configs_per_stage: int
    search_time_ms: float
    expansions: int
    feasible: bool


def run_group_size_search(
    group_sizes: Sequence[int] = (1, 2, 3, 4),
    *,
    space: ConfigurationSpace | None = None,
    slo_factor: float = 1.0,
    max_expansions: int = 2_000_000,
) -> list[GroupSizeSearchPoint]:
    """Measure the ESG_1Q search time as the group size grows.

    Uses the first stages of the expanded image classification pipeline.
    Section 5.4 quotes the 256-configurations-per-function space; the default
    here is the 64-configuration experiment space so the sweep stays fast —
    pass ``space=ConfigurationSpace.paper_256()`` for the full-size study.
    """
    if space is None:
        from repro.experiments.runner import EXPERIMENT_SPACE

        space = EXPERIMENT_SPACE
    store = build_profile_store(space)
    workflow = expanded_image_classification()
    stage_ids = workflow.topological_order()
    points: list[GroupSizeSearchPoint] = []
    for size in group_sizes:
        ids = stage_ids[: min(size, len(stage_ids))]
        specs = [
            StageSearchSpec.from_profile(sid, store.profile(workflow.function_of(sid)))
            for sid in ids
        ]
        target = slo_factor * store.minimum_config_latency_ms(
            [workflow.function_of(sid) for sid in ids]
        )
        result = esg_1q_search(specs, target, k=5, max_expansions=max_expansions)
        points.append(
            GroupSizeSearchPoint(
                group_size=size,
                configs_per_stage=space.size,
                search_time_ms=result.search_time_ms,
                expansions=result.expansions,
                feasible=result.feasible,
            )
        )
    return points


def render_group_size_search(points: list[GroupSizeSearchPoint]) -> str:
    """Text rendering of the Section 5.4 group-size study."""
    rows = [
        [p.group_size, p.configs_per_stage, p.search_time_ms, p.expansions, p.feasible]
        for p in points
    ]
    return format_table(
        ["Group size", "Configs/stage", "Search time (ms)", "Expansions", "Feasible"],
        rows,
        title="Section 5.4: ESG_1Q search time vs. function-group size",
    )
