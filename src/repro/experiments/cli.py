"""Command-line entry point: ``esg-repro <experiment> [options]``.

Examples
--------
Regenerate the static tables and the arrival distribution::

    esg-repro tables
    esg-repro fig5

Run the end-to-end comparison with a smaller workload::

    esg-repro fig6 --requests 80 --seed 7

Run the end-to-end matrix across four worker processes::

    esg-repro fig6 --jobs 4

Run everything (can take several minutes)::

    esg-repro all

List the named scenarios and compare every policy on one of them::

    esg-repro --list-scenarios
    esg-repro compare --scenario bursty-onoff-heavy --jobs 4

Sweep the full policy lattice across all cores, persisting every cell in a
content-addressed store so the next run (or any figure sharing cells) is
incremental::

    esg-repro sweep --seeds 1..8 --jobs 0 --store results/store
    esg-repro sweep --seeds 1..8 --jobs 0 --store results/store --resume
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.cli import build_lint_parser, run_lint
from repro.cluster.autoscale import autoscale_spec_names, get_autoscale_spec
from repro.cluster.churn import churn_spec_names, get_churn_spec
from repro.cluster.cluster import ClusterConfig
from repro.cluster.metrics import METRICS_MODES, MetricsConfig
from repro.cluster.topology import parse_topology, topology_names
from repro.experiments.ablation import render_figure12, run_figure12
from repro.experiments.arrivals import render_figure5, run_figure5
from repro.experiments.autoscale_study import (
    autoscale_rows,
    dominating_modes,
    render_autoscale_study,
    run_autoscale_study,
)
from repro.experiments.churn_study import render_churn_study, churn_rows, run_churn_study
from repro.experiments.end_to_end import (
    figure6_rows,
    figure7_curves,
    figure8_rows,
    render_figure6,
    render_figure7,
    render_figure8,
    run_end_to_end,
)
from repro.experiments.miss_rate import render_table4, run_table4
from repro.experiments.orion_search import render_figure9, run_figure9
from repro.experiments.overhead import (
    render_bruteforce_comparison,
    render_figure10,
    run_bruteforce_comparison,
    run_figure10,
)
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    LOOP_MODES,
    WORKLOAD_MODES,
    ExperimentConfig,
)
from repro.experiments.scenario_sweep import compare_on_scenarios, render_scenario_list
from repro.experiments.sweep import (
    DEFAULT_SWEEP_TOPOLOGIES,
    run_sweep,
    write_report_csv,
    write_report_json,
)
from repro.experiments.sensitivity import (
    render_figure11,
    render_group_size_search,
    run_figure11,
    run_group_size_search,
)
from repro.experiments.tables import render_table1, render_table2, render_table3

__all__ = ["main", "build_parser"]


def _positive_int(value: str) -> int:
    """argparse type: a strictly positive integer (clean usage error otherwise)."""
    number = int(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {number}")
    return number


def _topology_spec(value: str):
    """argparse type wrapper surfacing parse_topology's informative errors."""
    try:
        return parse_topology(value)
    except (ValueError, KeyError) as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _churn_spec(value: str):
    """argparse type wrapper surfacing get_churn_spec's informative errors."""
    try:
        return get_churn_spec(value)
    except KeyError as exc:
        raise argparse.ArgumentTypeError(str(exc).strip("'\"")) from None


def _autoscale_spec(value: str):
    """argparse type wrapper surfacing get_autoscale_spec's informative errors."""
    try:
        return get_autoscale_spec(value)
    except KeyError as exc:
        raise argparse.ArgumentTypeError(str(exc).strip("'\"")) from None


def _cluster_from_args(args: argparse.Namespace) -> ClusterConfig:
    """Resolve the ``--topology`` / ``--num-invokers`` cluster overrides."""
    cluster = (
        args.topology.to_cluster_config() if args.topology else ClusterConfig()
    )
    if args.num_invokers is not None:
        cluster = replace(cluster, num_invokers=args.num_invokers)
    return cluster


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    # An explicit cluster flag pins the cluster shape: scenario-pinned
    # topologies must not override it, even `--topology paper-16`.
    pinned = bool(args.topology) or args.num_invokers is not None
    return ExperimentConfig(
        num_requests=args.requests,
        seed=args.seed,
        cluster=_cluster_from_args(args),
        cluster_pinned=pinned,
        metrics=MetricsConfig(mode=args.metrics_mode),
        workload_mode=args.workload_mode,
        loop_mode=args.loop_mode,
        churn=args.churn,
        autoscale=args.autoscale,
    )


def _jobs(args: argparse.Namespace) -> int:
    return args.jobs


def _cmd_tables(args: argparse.Namespace) -> str:
    return "\n\n".join([render_table1(), render_table2(), render_table3()])


def _cmd_fig5(args: argparse.Namespace) -> str:
    return render_figure5(run_figure5(seed=args.seed))


def _cmd_fig6_7_8(args: argparse.Namespace) -> str:
    # Figures 7/8 read raw latencies and per-app costs, so the cells run
    # live even with --store (their summaries still warm the cache).
    results = run_end_to_end(
        config=_config_from_args(args), n_jobs=_jobs(args), store=args.store
    )
    parts = [
        render_figure6(figure6_rows(results)),
        render_figure7(figure7_curves(results)),
        render_figure8(figure8_rows(results)),
    ]
    return "\n\n".join(parts)


def _cmd_fig6(args: argparse.Namespace) -> str:
    # Figure 6 reads only summaries: with --store, a warm render is
    # pure cache loads — zero simulations.
    results = run_end_to_end(
        config=_config_from_args(args),
        n_jobs=_jobs(args),
        store=args.store,
        summary_only=True,
    )
    return render_figure6(figure6_rows(results))


def _cmd_table4(args: argparse.Namespace) -> str:
    return render_table4(
        run_table4(config=_config_from_args(args), n_jobs=_jobs(args), store=args.store)
    )


def _cmd_fig9(args: argparse.Namespace) -> str:
    return render_figure9(
        run_figure9(config=_config_from_args(args), n_jobs=_jobs(args), store=args.store)
    )


def _cmd_fig10(args: argparse.Namespace) -> str:
    parts = [
        render_figure10(
            run_figure10(
                config=_config_from_args(args), n_jobs=_jobs(args), store=args.store
            )
        ),
        render_bruteforce_comparison(run_bruteforce_comparison()),
    ]
    return "\n\n".join(parts)


def _cmd_fig11(args: argparse.Namespace) -> str:
    parts = [
        render_figure11(
            run_figure11(
                config=_config_from_args(args), n_jobs=_jobs(args), store=args.store
            )
        ),
        render_group_size_search(run_group_size_search()),
    ]
    return "\n\n".join(parts)


def _cmd_fig12(args: argparse.Namespace) -> str:
    return render_figure12(
        run_figure12(config=_config_from_args(args), n_jobs=_jobs(args), store=args.store)
    )


def _cmd_compare(args: argparse.Namespace) -> str:
    scenarios = args.scenario or ["paper-moderate-normal"]
    return compare_on_scenarios(
        scenarios, config=_config_from_args(args), n_jobs=_jobs(args), store=args.store
    )


def _cmd_churn(args: argparse.Namespace) -> str:
    kwargs = {"config": _config_from_args(args), "n_jobs": _jobs(args), "store": args.store}
    if args.scenario:
        results = run_churn_study(args.scenario, **kwargs)
    else:
        results = run_churn_study(**kwargs)
    return render_churn_study(churn_rows(results))


def _cmd_autoscale(args: argparse.Namespace) -> str:
    kwargs = {"config": _config_from_args(args), "n_jobs": _jobs(args), "store": args.store}
    if args.scenario:
        results = run_autoscale_study(args.scenario, **kwargs)
    else:
        results = run_autoscale_study(**kwargs)
    return render_autoscale_study(
        autoscale_rows(results), dominance=dominating_modes(results)
    )


def _parse_csv_list(value: str, what: str) -> list[str]:
    items = [item.strip() for item in value.split(",") if item.strip()]
    if not items:
        raise argparse.ArgumentTypeError(f"expected a comma-separated list of {what}")
    return items


def _parse_seeds(value: str) -> list[int]:
    """Seeds flag: ``1,2,9`` and ranges like ``1..8`` (inclusive), mixable."""
    seeds: list[int] = []
    for token in _parse_csv_list(value, "seeds"):
        try:
            if ".." in token:
                lo_text, hi_text = token.split("..", 1)
                lo, hi = int(lo_text), int(hi_text)
                if hi < lo:
                    raise argparse.ArgumentTypeError(
                        f"empty seed range {token!r} (end before start)"
                    )
                seeds.extend(range(lo, hi + 1))
            else:
                seeds.append(int(token))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad seed {token!r}: expected an integer or a lo..hi range"
            ) from None
    return seeds


def _parse_policies(value: str) -> list[str]:
    return _parse_csv_list(value, "policy names")


def _parse_topologies(value: str) -> list[str]:
    return _parse_csv_list(value, "topology specs")


#: Default store path of ``esg-repro sweep`` when ``--store`` is not given.
DEFAULT_SWEEP_STORE = "esg-store"


def _cmd_sweep(args: argparse.Namespace) -> str:
    store_path = Path(args.store if args.store else DEFAULT_SWEEP_STORE)
    if args.resume and not store_path.is_dir():
        raise SystemExit(
            f"esg-repro sweep: --resume expects an existing store at {store_path} "
            "(nothing to resume; drop --resume to start a fresh sweep)"
        )
    report = run_sweep(
        policies=args.policies if args.policies else list(DEFAULT_POLICIES),
        scenarios=args.scenario or ["paper-moderate-normal"],
        topologies=args.topologies if args.topologies else list(DEFAULT_SWEEP_TOPOLOGIES),
        seeds=args.seeds if args.seeds else [args.seed],
        store=store_path,
        config=_config_from_args(args),
        n_jobs=_jobs(args),
        progress=True,
    )
    report_path = write_report_json(report, args.report)
    lines = [
        f"Sweep finished: {report.total} cells "
        f"({report.cached} cached, {report.executed} executed) "
        f"in {report.elapsed_s:.2f}s",
        f"Store:  {report.store} ({len(report.cells)} cells resident or refreshed)",
        f"Report: {report_path}",
    ]
    if args.csv:
        csv_path = write_report_csv(report, args.csv)
        lines.append(f"CSV:    {csv_path}")
    return "\n".join(lines)


_COMMANDS: dict[str, Callable[[argparse.Namespace], str]] = {
    "tables": _cmd_tables,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "e2e": _cmd_fig6_7_8,
    "table4": _cmd_table4,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "fig11": _cmd_fig11,
    "fig12": _cmd_fig12,
    "compare": _cmd_compare,
    "churn": _cmd_churn,
    "autoscale": _cmd_autoscale,
    "sweep": _cmd_sweep,
}

#: Commands excluded from ``esg-repro all`` (they need explicit scenario
#: intent, and ``all`` predates the scenario subsystem; ``churn`` and
#: ``autoscale`` likewise post-date it, and keeping them out preserves
#: ``all``'s historical output; ``sweep`` writes report files and a store,
#: which ``all`` must not).
_NOT_IN_ALL = frozenset({"compare", "churn", "autoscale", "sweep"})


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="esg-repro",
        description="Regenerate the tables and figures of the ESG paper (HPDC 2024), "
        "or compare the schedulers on named workload scenarios.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(_COMMANDS) + ["all", "lint"],
        help="which artefact to regenerate ('compare' sweeps policies over "
        "--scenario; 'churn' runs the dynamic-cluster study; 'autoscale' "
        "compares static vs feedback prewarm regimes; 'lint' runs "
        "the determinism linter — its own options follow the subcommand, "
        "see 'esg-repro lint --help')",
    )
    parser.add_argument("--requests", type=int, default=120, help="requests per run (default 120)")
    parser.add_argument("--seed", type=int, default=42, help="experiment seed (default 42)")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for simulation sweeps (default 1 = in-process, 0 = all cores)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="scenario for the 'compare' command (repeatable; see --list-scenarios)",
    )
    parser.add_argument(
        "--topology",
        type=_topology_spec,
        metavar="SPEC",
        help="cluster topology: a registered name "
        f"({', '.join(topology_names())}), an invoker count N, or NxCxG "
        "(overrides the paper's 16x16x7 testbed; a scenario's pinned "
        "topology applies only when this is left unset)",
    )
    parser.add_argument(
        "--num-invokers",
        type=_positive_int,
        metavar="N",
        help="shorthand override of the invoker count alone",
    )
    parser.add_argument(
        "--churn",
        type=_churn_spec,
        metavar="NAME",
        help="capacity-churn recipe applied to every run: a registered "
        f"churn spec ({', '.join(churn_spec_names())}); expanded to a "
        "seed-derived join/leave/resize timeline per run (a scenario's own "
        "churn applies only when this is left unset)",
    )
    parser.add_argument(
        "--autoscale",
        type=_autoscale_spec,
        metavar="NAME",
        help="adaptive feedback prewarm applied to every run: a registered "
        f"autoscale spec ({', '.join(autoscale_spec_names())}); replaces the "
        "static EWMA prewarmer with the named controller (a scenario's own "
        "autoscale applies only when this is left unset)",
    )
    parser.add_argument(
        "--metrics-mode",
        choices=METRICS_MODES,
        default="retained",
        help="metrics storage: 'retained' keeps every request/task object "
        "(default, debuggable), 'streaming' folds observations into compact "
        "accumulators at record time (byte-identical summaries; the metrics "
        "layer stays compact on large --requests runs — the workload itself "
        "still scales with the request count)",
    )
    parser.add_argument(
        "--workload-mode",
        choices=WORKLOAD_MODES,
        default="materialized",
        help="workload generation: 'materialized' builds the full request "
        "list up front (default, debuggable), 'streaming' lets the "
        "simulator pull arrivals lazily from a request stream "
        "(byte-identical results, ~16 bytes per request instead of whole "
        "object graphs; pair with --metrics-mode streaming for "
        "bounded-memory million-request runs)",
    )
    parser.add_argument(
        "--loop-mode",
        choices=LOOP_MODES,
        default="fast",
        help="event-loop implementation: 'fast' (default) runs the "
        "split-heap queue with cached dispatch and memoized hot-path "
        "lookups, 'compat' keeps the original loop as the byte-identity "
        "parity anchor (summaries are identical, compat is slower)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        help="content-addressed result store: every summary-level cell "
        "persists its RunSummary here and repeat runs load cached cells "
        "instead of simulating (safe to share between concurrent runs; "
        "'sweep' defaults to ./" + DEFAULT_SWEEP_STORE + " when unset)",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list the registered workload scenarios and exit",
    )
    sweep = parser.add_argument_group(
        "sweep options", "only used by the 'sweep' command"
    )
    sweep.add_argument(
        "--policies",
        type=_parse_policies,
        metavar="LIST",
        help="comma-separated policy names to sweep "
        f"(default: {','.join(DEFAULT_POLICIES)})",
    )
    sweep.add_argument(
        "--topologies",
        type=_parse_topologies,
        metavar="LIST",
        help="comma-separated topology specs (names, N, or NxCxG; "
        f"default: {','.join(DEFAULT_SWEEP_TOPOLOGIES)})",
    )
    sweep.add_argument(
        "--seeds",
        type=_parse_seeds,
        metavar="LIST",
        help="comma-separated seeds, ranges allowed: '1,2,5..8' "
        "(default: the single --seed value)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted sweep: requires the store to exist "
        "(cached cells are always reused; this flag merely asserts there "
        "is something to resume)",
    )
    sweep.add_argument(
        "--report",
        metavar="PATH",
        default="sweep_report.json",
        help="where to write the JSON lattice report (default: sweep_report.json)",
    )
    sweep.add_argument(
        "--csv",
        metavar="PATH",
        help="also write the lattice as a flat CSV (one row per cell)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # The linter has its own option surface (paths, --format, --baseline,
        # ...), disjoint from the experiment options — give it its own parser.
        lint_parser = build_lint_parser(
            argparse.ArgumentParser(
                prog="esg-repro lint",
                description="AST-based determinism linter enforcing the "
                "byte-identity contract (see docs/determinism.md).",
            )
        )
        return run_lint(lint_parser.parse_args(arguments[1:]))
    parser = build_parser()
    args = parser.parse_args(arguments)
    if args.experiment == "lint":
        parser.error(
            "'lint' must be the first argument: esg-repro lint [paths] [options]"
        )
    if args.list_scenarios:
        print(render_scenario_list())
        return 0
    if args.experiment is None:
        parser.error("an experiment is required (or pass --list-scenarios)")
    if args.experiment == "all":
        outputs = [
            _COMMANDS[name](args) for name in sorted(_COMMANDS) if name not in _NOT_IN_ALL
        ]
        print("\n\n".join(outputs))
        return 0
    print(_COMMANDS[args.experiment](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
