"""Figure 10 and the Section 5.3 overhead analysis.

Figure 10 reports the distribution of ESG's per-decision scheduling overhead
in the three workload settings (group size 3); Section 5.3 contrasts it with
the time a brute-force search would take (7258 ms for three stages with 256
configurations per function in the paper's measurement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.experiments.store import ResultStore

from repro.core.bruteforce import brute_force_search
from repro.core.esg_1q import StageSearchSpec, esg_1q_search
from repro.experiments.engine import ExperimentEngine, RunSpec
from repro.experiments.report import format_table
from repro.experiments.runner import ExperimentConfig, build_profile_store
from repro.profiles.configuration import ConfigurationSpace
from repro.utils.stats import SummaryStats, summarize
from repro.workloads.applications import expanded_image_classification
from repro.workloads.generator import WORKLOAD_SETTINGS

__all__ = [
    "OverheadDistribution",
    "run_figure10",
    "render_figure10",
    "SearchTimeComparison",
    "run_bruteforce_comparison",
    "render_bruteforce_comparison",
]


@dataclass(frozen=True)
class OverheadDistribution:
    """ESG's scheduling-overhead distribution under one workload setting."""

    setting: str
    stats: SummaryStats

    @property
    def mean_ms(self) -> float:
        """Mean per-decision overhead."""
        return self.stats.mean

    @property
    def p95_ms(self) -> float:
        """95th percentile per-decision overhead."""
        return self.stats.p95


def run_figure10(
    settings: Iterable[str] = tuple(WORKLOAD_SETTINGS),
    *,
    config: ExperimentConfig | None = None,
    group_size: int = 3,
    n_jobs: int | None = 1,
    store: "ResultStore | str | None" = None,
) -> list[OverheadDistribution]:
    """Measure ESG's scheduling overhead distribution per setting.

    The distribution needs every raw overhead sample, so these cells always
    execute (the summary cache cannot serve them); with a ``store`` they
    still persist summaries that warm the cache for summary-level readers.
    """
    config = config or ExperimentConfig()
    specs = [
        RunSpec(
            policy="ESG",
            setting=setting,
            config=config,
            policy_overrides={"group_size": group_size},
        )
        for setting in settings
    ]
    results = ExperimentEngine(n_jobs, store=store).run(specs)
    return [
        OverheadDistribution(
            setting=spec.setting_name,
            stats=summarize(result.metrics.overhead_ms_samples),
        )
        for spec, result in zip(specs, results)
    ]


def render_figure10(distributions: list[OverheadDistribution]) -> str:
    """Text rendering of Figure 10 (box-plot style summary)."""
    rows = [
        [
            d.setting,
            d.stats.minimum,
            d.stats.p25,
            d.stats.median,
            d.stats.p75,
            d.stats.p95,
            d.stats.maximum,
            d.stats.mean,
            d.stats.count,
        ]
        for d in distributions
    ]
    return format_table(
        ["Setting", "Min", "P25", "Median", "P75", "P95", "Max", "Mean", "Samples"],
        rows,
        title="Figure 10: ESG scheduling overhead distribution (ms, group size 3)",
    )


# ----------------------------------------------------------------------
# Section 5.3: ESG_1Q vs. brute force
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchTimeComparison:
    """Search time of ESG_1Q vs. exhaustive enumeration on one group."""

    num_stages: int
    configs_per_stage: int
    esg_time_ms: float
    esg_expansions: int
    bruteforce_time_ms: float
    bruteforce_examined: int
    same_optimum: bool


def run_bruteforce_comparison(
    *,
    num_stages: int = 3,
    space: ConfigurationSpace | None = None,
    slo_factor: float = 1.0,
) -> SearchTimeComparison:
    """Compare ESG_1Q and brute force on one group of the expanded pipeline.

    The Section 5.3 scenario uses three stages with 256 configurations each;
    exhaustively enumerating that space (16.7M joint configurations) takes
    tens of seconds in pure Python, so the default uses the experiment space
    (64 configurations per function, 262k joint configurations), which shows
    the same orders-of-magnitude gap.  Pass
    ``space=ConfigurationSpace.paper_256()`` to run the full-size comparison.
    """
    if space is None:
        from repro.experiments.runner import EXPERIMENT_SPACE

        space = EXPERIMENT_SPACE
    store = build_profile_store(space)
    workflow = expanded_image_classification()
    stage_ids = workflow.topological_order()[:num_stages]
    specs = [
        StageSearchSpec.from_profile(sid, store.profile(workflow.function_of(sid)))
        for sid in stage_ids
    ]
    target = slo_factor * store.minimum_config_latency_ms(
        [workflow.function_of(sid) for sid in stage_ids]
    )
    esg = esg_1q_search(specs, target, k=5)
    brute = brute_force_search(specs, target, k=5)
    same = (
        esg.feasible == brute.feasible
        and (not esg.feasible or abs(esg.best.cost_cents - brute.best.cost_cents) < 1e-9)
    )
    return SearchTimeComparison(
        num_stages=num_stages,
        configs_per_stage=space.size,
        esg_time_ms=esg.search_time_ms,
        esg_expansions=esg.expansions,
        bruteforce_time_ms=brute.search_time_ms,
        bruteforce_examined=brute.examined,
        same_optimum=same,
    )


def render_bruteforce_comparison(comparison: SearchTimeComparison) -> str:
    """Text rendering of the Section 5.3 search-time comparison."""
    rows = [
        ["ESG_1Q (dual-blade pruning)", comparison.esg_time_ms, comparison.esg_expansions],
        ["Brute force", comparison.bruteforce_time_ms, comparison.bruteforce_examined],
    ]
    title = (
        "Section 5.3: search time for "
        f"{comparison.num_stages} stages x {comparison.configs_per_stage} configurations "
        f"(same optimum: {comparison.same_optimum})"
    )
    return format_table(["Search", "Time (ms)", "States examined"], rows, title=title)
