"""Content-addressed result store: cache RunSummaries by spec identity.

Every run in this repository is a pure function of its
:class:`~repro.experiments.engine.RunSpec`: the policy recipe, the demand
side (setting or scenario), the seed and the platform configuration fully
determine the :class:`~repro.cluster.metrics.RunSummary` (the tier-1 parity
suites pin this across processes, loop modes, index modes, metrics modes
and workload modes).  Re-simulating an identical cell is therefore pure
waste — exactly the cell production experiment managers cache.

A :class:`ResultStore` keys each run by a **stable content hash** of the
spec's code-relevant fields:

* the canonical policy identity plus its constructor overrides,
* the workload setting *or* the full scenario bundle (arrival process,
  application mix, stream label, pinned topology, churn recipe, horizon),
* every :class:`~repro.experiments.runner.ExperimentConfig` knob that can
  change the simulated outcome — seed, request count, noise, configuration
  space, cluster shape, controller, burstiness, horizon, churn, autoscale,
  and the loop/index/metrics/workload modes,
* the store schema version (bumping it invalidates every older entry).

Presentation-only fields are explicitly **excluded**: a spec's ``label``,
its ``summary_only`` transport flag, and the human-readable ``description``
of scenarios and topologies never reach the hash, so renaming a figure row
or re-describing a scenario does not invalidate its cached cells.

The hash is deterministic across processes and interpreter invocations:
mappings are canonicalized with sorted keys and digested with ``blake2s``
(the same PYTHONHASHSEED-proof construction :func:`~repro.utils.rng.derive_rng`
uses for RNG stream labels), so spawn workers, re-runs and machines all
agree on the key for one spec.

Entries are single JSON files written **atomically** (temp file +
``os.replace`` in the same directory): concurrent ``n_jobs=4`` workers and
interrupted sweeps can never leave a torn entry, and a torn/corrupted/
foreign file is simply treated as a miss (and overwritten by the next
execution), never an error.

Payloads record their ``kind``.  The store holds ``"summary"`` payloads —
the compact :class:`RunSummary` — so only callers that need *just* the
summary (``summary_only`` specs: the scenario sweeps, the churn study,
Table 4, Figures 6/9/11/12, ``esg-repro sweep``) are served from cache; a
spec that needs per-request data (``summary_only=False``) always falls back
to a live run, whose summary is then persisted for future summary readers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

from repro.cluster.metrics import MetricsCollector, RunSummary
from repro.workloads.generator import WORKLOAD_SETTINGS

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.experiments.engine import RunSpec
    from repro.experiments.runner import RunResult

__all__ = [
    "STORE_SCHEMA_VERSION",
    "SUMMARY_KIND",
    "ResultStore",
    "StoreEntry",
    "canonical_policy_key",
    "spec_key",
    "spec_key_doc",
]

#: Bump to invalidate every previously stored entry (e.g. when a simulator
#: change legitimately alters summaries without touching any spec field).
#: v2: the key document gained the ``autoscale`` config field.
STORE_SCHEMA_VERSION = 2

#: The payload kind the store holds today: a bare :class:`RunSummary`.
SUMMARY_KIND = "summary"

#: Per-class presentation-only fields excluded from the canonical key
#: document.  Everything else on these dataclasses is code-relevant.
_PRESENTATION_FIELDS: dict[str, frozenset[str]] = {
    "repro.workloads.scenarios.Scenario": frozenset({"description"}),
    "repro.cluster.topology.ClusterTopology": frozenset({"description"}),
}

#: Alias table mirroring :func:`~repro.experiments.runner.make_policy`: every
#: spelling that builds the same policy class hashes to the same key.
_POLICY_ALIASES: dict[str, str] = {
    "esg": "esg",
    "infless": "infless",
    "fast-gshare": "fast-gshare",
    "fastgshare": "fast-gshare",
    "fast gshare": "fast-gshare",
    "orion": "orion",
    "best-first": "orion",
    "bfs": "orion",
    "aquatope": "aquatope",
    "bo": "aquatope",
}


def canonical_policy_key(name: str) -> str:
    """Normalise a policy name exactly like ``make_policy``'s lookup.

    ``"ESG"``, ``"esg"`` and ``"Orion"``/``"bfs"`` build the same policy
    classes, so they must address the same cache cells.  Unknown names pass
    through normalised — key computation must never be stricter than
    execution (the engine reports the unknown-policy error, not the store).
    """
    key = name.strip().lower().replace("_", "-")
    return _POLICY_ALIASES.get(key, key)


# ----------------------------------------------------------------------
# Canonicalisation
# ----------------------------------------------------------------------
def _canonical(value: object) -> object:
    """Reduce ``value`` to a JSON-able form with a deterministic encoding.

    Dataclasses become ``{"__dataclass__": qualified-name, **init-fields}``
    (derived ``init=False`` fields and presentation-only fields skipped);
    mappings are rebuilt with sorted string keys so insertion order — and
    hence PYTHONHASHSEED — can never leak into the hash.  Unknown types
    raise instead of falling back to ``repr``: a silently unstable encoding
    would poison every key derived from it.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, Path):
        return str(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        label = f"{cls.__module__}.{cls.__qualname__}"
        skip = _PRESENTATION_FIELDS.get(label, frozenset())
        doc: dict[str, object] = {"__dataclass__": label}
        for field in dataclasses.fields(value):
            if not field.init or field.name in skip:
                continue
            doc[field.name] = _canonical(getattr(value, field.name))
        return doc
    if isinstance(value, Mapping):
        items: dict[str, object] = {}
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"store keys require string mapping keys, got {type(key).__name__}"
                )
            items[key] = _canonical(value[key])
        return dict(sorted(items.items()))
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    raise TypeError(
        f"cannot canonicalise {type(value).__module__}.{type(value).__qualname__} "
        "into a store key; spec fields must be plain data or dataclasses"
    )


def spec_key_doc(spec: "RunSpec") -> dict[str, object]:
    """The canonical key document of one spec (code-relevant fields only).

    ``label`` and ``summary_only`` are deliberately absent: the former is
    bookkeeping, and the latter changes how the result travels, not what
    the simulation computes — a full-result run and a summary-only run of
    the same cell must share a key so one can warm the cache for the other.
    """
    from repro.cluster.autoscale import get_autoscale_spec
    from repro.cluster.churn import get_churn_spec

    config = spec.config
    churn = config.churn
    if isinstance(churn, str):
        # A name and its resolved spec describe the same churn stream.
        churn = get_churn_spec(churn)
    autoscale = config.autoscale
    if isinstance(autoscale, str):
        # A name and its resolved spec describe the same controller.
        autoscale = get_autoscale_spec(autoscale)
    workload: dict[str, object]
    if spec.scenario is not None:
        workload = {"scenario": _canonical(spec.scenario)}
    else:
        setting = spec.setting
        if isinstance(setting, str):
            # A registered name and its resolved object address one cell.
            setting = WORKLOAD_SETTINGS[setting]
        workload = {"setting": _canonical(setting)}
    return {
        "schema": STORE_SCHEMA_VERSION,
        "policy": canonical_policy_key(spec.policy),
        "policy_overrides": _canonical(dict(spec.policy_overrides)),
        "workload": workload,
        "config": {
            "num_requests": config.num_requests,
            "seed": config.seed,
            "noise_sigma": config.noise_sigma,
            "space": _canonical(config.space),
            "cluster": _canonical(config.cluster),
            "cluster_pinned": config.cluster_pinned,
            "controller": _canonical(config.controller),
            "burstiness": config.burstiness,
            "max_time_ms": config.max_time_ms,
            "metrics_mode": config.metrics.mode,
            "workload_mode": config.workload_mode,
            "loop_mode": config.loop_mode,
            "churn": _canonical(churn),
            "autoscale": _canonical(autoscale),
        },
    }


def spec_key(spec: "RunSpec") -> str:
    """Stable content hash of one spec (32 hex chars, blake2s).

    A pure function of the spec's code-relevant fields and the store schema
    version — independent of PYTHONHASHSEED, dict insertion order, process
    boundaries and platform, like :func:`~repro.utils.rng.derive_rng`'s
    label hashing.
    """
    doc = json.dumps(
        spec_key_doc(spec), sort_keys=True, separators=(",", ":"), allow_nan=True
    )
    return hashlib.blake2s(doc.encode("utf-8"), digest_size=16).hexdigest()


# ----------------------------------------------------------------------
# On-disk store
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """One decoded store record."""

    key: str
    kind: str
    summary: RunSummary


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp + replace).

    Readers either see the previous complete entry or the new complete
    entry, never a torn file — even with concurrent writers, the last
    complete rename wins and every intermediate state is a valid file.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ResultStore:
    """Content-addressed on-disk cache of :class:`RunSummary` payloads.

    Layout: one JSON file per cell at ``<root>/<key[:2]>/<key>.json`` (the
    two-character fan-out keeps directories small at fleet scale).  Each
    file records the schema version, the key, the payload ``kind``, the
    human-readable canonical spec document (provenance — what exactly this
    cell was) and the summary payload.

    Robustness contract: loading never raises for a bad entry.  Missing,
    truncated, corrupted, schema-mismatched or key-mismatched files are all
    treated as misses; the next execution of that cell atomically replaces
    the bad file.
    """

    def __init__(
        self, root: str | Path, *, schema_version: int = STORE_SCHEMA_VERSION
    ) -> None:
        self.root = Path(root)
        self.schema_version = schema_version

    # -- keys and paths ------------------------------------------------
    def key_for(self, spec: "RunSpec") -> str:
        """The content hash addressing ``spec``'s cell."""
        return spec_key(spec)

    def path_for_key(self, key: str) -> Path:
        """Entry path of one key."""
        return self.root / key[:2] / f"{key}.json"

    def path_for(self, spec: "RunSpec") -> Path:
        """Entry path of one spec."""
        return self.path_for_key(self.key_for(spec))

    # -- reads ---------------------------------------------------------
    def get_entry(self, key: str) -> StoreEntry | None:
        """Decode the entry stored under ``key``; ``None`` on any defect."""
        path = self.path_for_key(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return None
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                return None
            if payload.get("schema_version") != self.schema_version:
                return None
            if payload.get("key") != key:
                return None
            kind = payload.get("kind")
            summary_fields = payload.get("summary")
            if kind != SUMMARY_KIND or not isinstance(summary_fields, dict):
                return None
            summary = RunSummary(**summary_fields)
        except (ValueError, TypeError):
            # Truncated/corrupt JSON, or a field set from another era of
            # RunSummary: a miss, never an error.
            return None
        return StoreEntry(key=key, kind=kind, summary=summary)

    def get_summary(self, spec: "RunSpec") -> RunSummary | None:
        """The cached summary of ``spec``'s cell, if present and intact."""
        entry = self.get_entry(self.key_for(spec))
        return entry.summary if entry is not None else None

    def load_result(self, spec: "RunSpec") -> "RunResult | None":
        """Serve ``spec`` from cache, or ``None`` when it cannot be served.

        Only ``summary_only`` specs are servable from a summary payload: a
        caller that needs ``requests`` or a live metrics collector must run
        the cell (honouring ``summary_only`` semantics is the store's job,
        not each call site's).  A served result is indistinguishable from a
        ``summary_only`` engine execution — same placeholder collector,
        same empty request list, byte-identical summary.
        """
        from repro.experiments.runner import RunResult

        if not spec.summary_only:
            return None
        summary = self.get_summary(spec)
        if summary is None:
            return None
        if spec.scenario is not None:
            setting = spec.scenario.setting_obj
            scenario_name = spec.scenario.name
        else:
            setting = (
                WORKLOAD_SETTINGS[spec.setting]
                if isinstance(spec.setting, str)
                else spec.setting
            )
            scenario_name = None
        return RunResult(
            policy_name=summary.policy,
            setting=setting,
            summary=summary,
            metrics=MetricsCollector.placeholder_from_summary(summary),
            requests=[],
            scenario_name=scenario_name,
        )

    # -- writes --------------------------------------------------------
    def put_summary(self, spec: "RunSpec", summary: RunSummary) -> str:
        """Persist ``summary`` as ``spec``'s cell; returns the key."""
        key = self.key_for(spec)
        payload = {
            "schema_version": self.schema_version,
            "key": key,
            "kind": SUMMARY_KIND,
            "spec": spec_key_doc(spec),
            "summary": dataclasses.asdict(summary),
        }
        text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=True)
        _atomic_write_text(self.path_for_key(key), text + "\n")
        return key

    # -- enumeration ---------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Keys of every entry file currently on disk (valid or not)."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, spec_or_key: "RunSpec | str") -> bool:
        key = (
            spec_or_key
            if isinstance(spec_or_key, str)
            else self.key_for(spec_or_key)
        )
        return self.get_entry(key) is not None
