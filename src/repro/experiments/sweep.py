"""Fleet-scale sweeps: a (policy x scenario x topology x seed) lattice.

``esg-repro sweep`` fans the full lattice out across worker processes and
persists every cell's :class:`~repro.experiments.runner.RunSummary` in a
content-addressed :class:`~repro.experiments.store.ResultStore`.  Because
cells are keyed by *content* (not by position in the lattice), a re-run of
the same sweep — or of any overlapping sweep, figure, or study — loads the
cached cells and executes only what is genuinely new.  Interrupting a sweep
loses nothing: finished cells were persisted worker-side, so ``--resume``
(or simply re-running the same command) picks up where it stopped.

The machine-readable report separates *content* (``lattice`` + ``cells``,
stable across re-runs) from *execution* (``cached``/``executed`` counts and
wall time, which differ between cold and warm runs) so downstream tooling
can both diff the results and assert "the warm run executed nothing".
"""

from __future__ import annotations

import csv
import dataclasses
import json
import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterable, Sequence, TextIO

from repro.cluster.topology import ClusterTopology, parse_topology
from repro.experiments.engine import ExperimentEngine, RunSpec
from repro.experiments.runner import DEFAULT_POLICIES, ExperimentConfig, RunResult
from repro.experiments.store import ResultStore, spec_key
from repro.workloads.scenarios import SCENARIOS

__all__ = [
    "SWEEP_REPORT_SCHEMA",
    "SweepCell",
    "SweepReport",
    "build_sweep_specs",
    "run_sweep",
    "write_report_csv",
    "write_report_json",
]

#: Schema tag of the sweep report JSON.
SWEEP_REPORT_SCHEMA = 1

#: Lattice cells default to the paper testbed topology.
DEFAULT_SWEEP_TOPOLOGIES: tuple[str, ...] = ("paper-16",)


@dataclass(frozen=True)
class SweepCell:
    """One completed lattice cell: its coordinates, cache key, and summary."""

    policy: str
    scenario: str
    topology: str
    seed: int
    key: str
    cached: bool
    summary: dict[str, object]

    def content_row(self) -> dict[str, object]:
        """The execution-independent portion (identical cold vs. warm)."""
        return {
            "policy": self.policy,
            "scenario": self.scenario,
            "topology": self.topology,
            "seed": self.seed,
            "key": self.key,
            "summary": self.summary,
        }


@dataclass(frozen=True)
class SweepReport:
    """Everything a sweep produced, ready for JSON/CSV serialisation."""

    store: str
    lattice: dict[str, list[object]]
    cells: list[SweepCell]
    elapsed_s: float

    @property
    def total(self) -> int:
        """Number of lattice cells."""
        return len(self.cells)

    @property
    def cached(self) -> int:
        """Cells served from the store without running a simulation."""
        return sum(1 for cell in self.cells if cell.cached)

    @property
    def executed(self) -> int:
        """Cells that actually ran a simulation."""
        return self.total - self.cached

    def to_doc(self) -> dict[str, object]:
        """The JSON document written by ``esg-repro sweep --report``."""
        return {
            "schema": SWEEP_REPORT_SCHEMA,
            "store": self.store,
            "lattice": self.lattice,
            "execution": {
                "total": self.total,
                "cached": self.cached,
                "executed": self.executed,
                "elapsed_s": self.elapsed_s,
            },
            "cells": [cell.content_row() for cell in self.cells],
        }


def _resolve_topologies(
    topologies: Iterable[ClusterTopology | str],
) -> list[ClusterTopology]:
    return [
        parse_topology(item) if isinstance(item, str) else item for item in topologies
    ]


def build_sweep_specs(
    policies: Sequence[str],
    scenarios: Sequence[str],
    topologies: Sequence[ClusterTopology | str],
    seeds: Sequence[int],
    *,
    config: ExperimentConfig | None = None,
) -> list[tuple[tuple[str, str, str, int], RunSpec]]:
    """Expand the lattice into ``((policy, scenario, topology, seed), spec)``.

    Every name resolves eagerly, so typos fail before any cell runs.  Cells
    are summary-only: that is what makes them servable from the store.  The
    topology pins the cluster shape (``cluster_pinned=True``), overriding any
    scenario-pinned topology — the lattice axis wins, as ``--topology`` does
    on the figure commands.
    """
    base = config or ExperimentConfig()
    resolved = _resolve_topologies(topologies)
    for scenario in scenarios:
        SCENARIOS.get(scenario)  # fail fast on unknown names
    items: list[tuple[tuple[str, str, str, int], RunSpec]] = []
    for policy in policies:
        for scenario in scenarios:
            for topology in resolved:
                for seed in seeds:
                    cell_config = replace(
                        base,
                        seed=seed,
                        cluster=topology.to_cluster_config(),
                        cluster_pinned=True,
                    )
                    spec = RunSpec(
                        policy=policy,
                        scenario=scenario,
                        config=cell_config,
                        summary_only=True,
                    )
                    items.append(((policy, scenario, topology.name, seed), spec))
    return items


class _Progress:
    """Single-line live progress: done/cached/running counts on stderr."""

    def __init__(self, total: int, stream: TextIO | None = None) -> None:
        self.total = total
        self.done = 0
        self.cached = 0
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = total > 0

    def update(self, coords: tuple[str, str, str, int], cached: bool) -> None:
        self.done += 1
        if cached:
            self.cached += 1
        if not self.enabled:
            return
        running = self.total - self.done
        policy, scenario, topology, seed = coords
        self.stream.write(
            f"\r[{self.done}/{self.total}] cached={self.cached} "
            f"executed={self.done - self.cached} running={running}  "
            f"last={policy}/{scenario}/{topology}/seed{seed}\x1b[K"
        )
        self.stream.flush()

    def finish(self) -> None:
        if self.enabled:
            self.stream.write("\n")
            self.stream.flush()


def run_sweep(
    policies: Sequence[str] = DEFAULT_POLICIES,
    scenarios: Sequence[str] = ("paper-moderate-normal",),
    topologies: Sequence[ClusterTopology | str] = DEFAULT_SWEEP_TOPOLOGIES,
    seeds: Sequence[int] = (42,),
    *,
    store: ResultStore | str | Path,
    config: ExperimentConfig | None = None,
    n_jobs: int | None = 1,
    progress: bool = False,
    on_cell: Callable[[tuple[str, str, str, int], RunResult, bool], None] | None = None,
) -> SweepReport:
    """Run (or resume) the lattice and return the report.

    The ``store`` is mandatory: incremental re-runs are the point of the
    sweep.  Cells already in the store load without a simulation; the rest
    execute (``n_jobs`` fans them out) and persist as they finish, so an
    interrupted sweep resumes for free.
    """
    items = build_sweep_specs(policies, scenarios, topologies, seeds, config=config)
    specs = [spec for _, spec in items]
    resolved_topologies = _resolve_topologies(topologies)
    meter = _Progress(len(items) if progress else 0)
    cached_flags = [False] * len(items)

    def _on_cell(index: int, spec: RunSpec, result: RunResult, cached: bool) -> None:
        cached_flags[index] = cached
        meter.update(items[index][0], cached)
        if on_cell is not None:
            on_cell(items[index][0], result, cached)

    engine = ExperimentEngine(n_jobs, store=store)
    # repro: allow[REP001] elapsed_s lives in the report's execution section, which is explicitly separated from cell content (cold and warm reports compare equal on cells, not on execution)
    started = time.perf_counter()
    results = engine.run(specs, on_cell=_on_cell)
    # repro: allow[REP001] closes the execution-metadata measurement above
    elapsed = time.perf_counter() - started
    meter.finish()
    cells = [
        SweepCell(
            policy=coords[0],
            scenario=coords[1],
            topology=coords[2],
            seed=coords[3],
            key=spec_key(spec),
            cached=cached_flags[index],
            summary=dataclasses.asdict(result.summary),
        )
        for index, ((coords, spec), result) in enumerate(zip(items, results))
    ]
    return SweepReport(
        store=str(engine.store.root),
        lattice={
            "policies": list(policies),
            "scenarios": list(scenarios),
            "topologies": [topology.name for topology in resolved_topologies],
            "seeds": [int(seed) for seed in seeds],
        },
        cells=cells,
        elapsed_s=elapsed,
    )


def write_report_json(report: SweepReport, path: str | Path) -> Path:
    """Write the sweep report as JSON (stable key order)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(report.to_doc(), indent=2, sort_keys=True, allow_nan=True) + "\n",
        encoding="utf-8",
    )
    return path


#: Summary fields flattened into the CSV (one column each).
_CSV_SUMMARY_FIELDS = (
    "slo_hit_rate",
    "total_cost_cents",
    "mean_latency_ms",
    "mean_waiting_ms",
    "mean_overhead_ms",
    "num_completed",
    "truncated",
)


def write_report_csv(report: SweepReport, path: str | Path) -> Path:
    """Write the lattice as a flat CSV (one row per cell)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["policy", "scenario", "topology", "seed", "key", *_CSV_SUMMARY_FIELDS]
        )
        for cell in report.cells:
            writer.writerow(
                [
                    cell.policy,
                    cell.scenario,
                    cell.topology,
                    cell.seed,
                    cell.key,
                    *(cell.summary.get(field) for field in _CSV_SUMMARY_FIELDS),
                ]
            )
    return path
