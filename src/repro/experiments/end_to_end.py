"""Figures 6, 7 and 8: end-to-end SLO hit rates, costs and latency curves.

* **Figure 6** — per workload setting, the average SLO hit rate of every
  scheduler together with its total cost normalised to ESG's cost.
* **Figure 7** — the end-to-end latency of every completed request of each
  application under the relaxed-heavy setting (one curve per scheduler).
* **Figure 8** — SLO hit rate and cost broken down per application for each
  of the three settings.

All three are derived from the same run matrix, so one call to
:func:`run_end_to_end` feeds all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - type-only
    from repro.experiments.store import ResultStore

from repro.experiments.report import format_percent, format_table
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentConfig,
    RunResult,
    run_matrix,
)
from repro.workloads.generator import WORKLOAD_SETTINGS

__all__ = [
    "Figure6Row",
    "Figure8Row",
    "LatencyCurve",
    "run_end_to_end",
    "figure6_rows",
    "figure7_curves",
    "figure8_rows",
    "render_figure6",
    "render_figure7",
    "render_figure8",
]


@dataclass(frozen=True)
class Figure6Row:
    """One bar pair of Figure 6: a scheduler under one setting."""

    setting: str
    policy: str
    slo_hit_rate: float
    total_cost_cents: float
    cost_normalized_to_esg: float


@dataclass(frozen=True)
class Figure8Row:
    """One bar pair of Figure 8: a scheduler on one application in one setting."""

    setting: str
    app: str
    policy: str
    slo_hit_rate: float
    cost_cents: float
    cost_normalized_to_esg: float


@dataclass(frozen=True)
class LatencyCurve:
    """One latency curve of Figure 7 (an application under one scheduler)."""

    setting: str
    app: str
    policy: str
    latencies_ms: tuple[float, ...]
    slo_ms: float


# ----------------------------------------------------------------------
# Shared matrix
# ----------------------------------------------------------------------
def run_end_to_end(
    policies: Iterable[str] = DEFAULT_POLICIES,
    settings: Iterable[str] = tuple(WORKLOAD_SETTINGS),
    *,
    config: ExperimentConfig | None = None,
    n_jobs: int | None = 1,
    store: "ResultStore | str | None" = None,
    summary_only: bool = False,
) -> dict[tuple[str, str], RunResult]:
    """Run the full (setting x policy) matrix used by Figures 6-8.

    ``n_jobs`` fans the independent cells out across worker processes
    (1 = in-process, ``None``/0 = one per core); results are identical.

    ``store`` caches each cell's summary by spec identity.  Figure 6 reads
    only summaries, so a ``summary_only=True`` matrix re-renders from a
    warm store without a single simulation; Figures 7 and 8 read the raw
    metrics, so they must keep ``summary_only=False`` — their cells always
    execute, but still persist summaries that warm the cache for every
    summary-level consumer (Figure 6, ``esg-repro sweep``, ...).
    """
    return run_matrix(
        policies,
        settings,
        config=config,
        n_jobs=n_jobs,
        store=store,
        summary_only=summary_only,
    )


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------
def figure6_rows(results: Mapping[tuple[str, str], RunResult]) -> list[Figure6Row]:
    """Average SLO hit rate and ESG-normalised cost per (setting, policy)."""
    rows: list[Figure6Row] = []
    settings = sorted({setting for (setting, _) in results})
    for setting in settings:
        esg_cost = None
        for (s, policy), result in results.items():
            if s == setting and policy == "ESG":
                esg_cost = result.summary.total_cost_cents
        for (s, policy), result in sorted(results.items()):
            if s != setting:
                continue
            cost = result.summary.total_cost_cents
            normalized = cost / esg_cost if esg_cost else float("nan")
            rows.append(
                Figure6Row(
                    setting=setting,
                    policy=policy,
                    slo_hit_rate=result.summary.slo_hit_rate,
                    total_cost_cents=cost,
                    cost_normalized_to_esg=normalized,
                )
            )
    return rows


def render_figure6(rows: list[Figure6Row]) -> str:
    """Text rendering of Figure 6."""
    table_rows = [
        [r.setting, r.policy, format_percent(r.slo_hit_rate), r.total_cost_cents, r.cost_normalized_to_esg]
        for r in rows
    ]
    return format_table(
        ["Setting", "Policy", "SLO hit rate", "Cost (cents)", "Cost / ESG"],
        table_rows,
        title="Figure 6: Average SLO hit rate and cost (normalised to ESG)",
    )


# ----------------------------------------------------------------------
# Figure 7
# ----------------------------------------------------------------------
def figure7_curves(
    results: Mapping[tuple[str, str], RunResult], *, setting: str = "relaxed-heavy"
) -> list[LatencyCurve]:
    """Per-application end-to-end latency curves for one setting."""
    curves: list[LatencyCurve] = []
    for (s, policy), result in sorted(results.items()):
        if s != setting:
            continue
        for app in result.metrics.app_names():
            latencies = tuple(result.metrics.latencies_ms(app))
            # Read the SLO from the collector, not result.requests: a
            # streaming-workload run retains no request list.
            slo_ms = result.metrics.app_slo_ms(app) or 0.0
            curves.append(
                LatencyCurve(
                    setting=s,
                    app=app,
                    policy=policy,
                    latencies_ms=latencies,
                    slo_ms=slo_ms,
                )
            )
    return curves


def render_figure7(curves: list[LatencyCurve]) -> str:
    """Text rendering of Figure 7 (summary statistics of each curve)."""
    rows = []
    for curve in curves:
        if curve.latencies_ms:
            mean = sum(curve.latencies_ms) / len(curve.latencies_ms)
            worst = max(curve.latencies_ms)
            within = sum(1 for v in curve.latencies_ms if v <= curve.slo_ms) / len(curve.latencies_ms)
        else:
            mean, worst, within = 0.0, 0.0, 0.0
        rows.append(
            [
                curve.app,
                curve.policy,
                curve.slo_ms,
                mean,
                worst,
                format_percent(within),
                len(curve.latencies_ms),
            ]
        )
    return format_table(
        ["Application", "Policy", "SLO (ms)", "Mean latency", "Max latency", "Within SLO", "Jobs"],
        rows,
        title="Figure 7: End-to-end latency per application (relaxed-heavy)",
    )


# ----------------------------------------------------------------------
# Figure 8
# ----------------------------------------------------------------------
def figure8_rows(results: Mapping[tuple[str, str], RunResult]) -> list[Figure8Row]:
    """Per-application SLO hit rate and cost for every (setting, policy)."""
    rows: list[Figure8Row] = []
    settings = sorted({setting for (setting, _) in results})
    for setting in settings:
        apps: set[str] = set()
        for (s, _), result in results.items():
            if s == setting:
                apps.update(result.metrics.app_names())
        for app in sorted(apps):
            esg_cost = None
            for (s, policy), result in results.items():
                if s == setting and policy == "ESG":
                    esg_cost = result.metrics.total_cost_cents(app)
            for (s, policy), result in sorted(results.items()):
                if s != setting:
                    continue
                cost = result.metrics.total_cost_cents(app)
                normalized = cost / esg_cost if esg_cost else float("nan")
                rows.append(
                    Figure8Row(
                        setting=setting,
                        app=app,
                        policy=policy,
                        slo_hit_rate=result.metrics.slo_hit_rate(app),
                        cost_cents=cost,
                        cost_normalized_to_esg=normalized,
                    )
                )
    return rows


def render_figure8(rows: list[Figure8Row]) -> str:
    """Text rendering of Figure 8."""
    table_rows = [
        [r.setting, r.app, r.policy, format_percent(r.slo_hit_rate), r.cost_cents, r.cost_normalized_to_esg]
        for r in rows
    ]
    return format_table(
        ["Setting", "Application", "Policy", "SLO hit rate", "Cost (cents)", "Cost / ESG"],
        table_rows,
        title="Figure 8: Per-application SLO hit rates and cost",
    )
