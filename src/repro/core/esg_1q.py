"""ESG_1Q: the per-queue configuration-path search (Section 3.3, Algorithm 1).

Given the sequence of remaining stages of a function group and a target
latency (the group's SLO quota), ESG_1Q finds configuration *paths* — one
``(batch, #vCPUs, #vGPUs)`` configuration per stage — that meet the target
with the smallest per-job resource cost.  The search walks the stages in
order, extending every surviving partial path with each configuration of the
next stage (configurations sorted by increasing latency, so time-based
pruning can ``break`` out of the rest of the list), and applies the
dual-blade pruning bounds of :mod:`repro.core.bounds`:

* **time blade** — if even the fastest completion of the extended path
  exceeds the target latency, the extension (and every slower configuration
  after it) is discarded;
* **cost blade** — if even the cheapest completion of the extended path
  costs no less than the K-th best known achievable completion cost
  (``best_full_paths_maxCost``), the extension is discarded.

The output is the configuration priority queue the controller consumes: up
to K complete paths sorted by increasing cost.  When no path can meet the
target, the fallback "default path" (every stage at its fastest
configuration) is returned so the scheduler can still make progress, as in
``setDefaultPaths`` of Figure 3(b).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.bounds import SuffixBounds
from repro.profiles.configuration import Configuration
from repro.profiles.profiler import FunctionProfile, ProfileEntry

__all__ = ["StageSearchSpec", "PathCandidate", "ESG1QResult", "esg_1q_search"]


@dataclass(frozen=True)
class StageSearchSpec:
    """Search input for one stage: its configuration list sorted by latency."""

    stage_id: str
    function_name: str
    entries: tuple[ProfileEntry, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError(f"stage {self.stage_id!r} has no configuration entries")
        lat = [e.latency_ms for e in self.entries]
        if any(lat[i] > lat[i + 1] for i in range(len(lat) - 1)):
            raise ValueError(f"entries of stage {self.stage_id!r} must be sorted by latency")

    @classmethod
    def from_profile(
        cls,
        stage_id: str,
        profile: FunctionProfile,
        *,
        max_batch: int | None = None,
    ) -> "StageSearchSpec":
        """Build the spec from a function profile, optionally capping the batch."""
        entries = profile.sorted_by_latency(max_batch=max_batch)
        return cls(stage_id=stage_id, function_name=profile.spec.name, entries=entries)

    @property
    def min_latency_ms(self) -> float:
        """Latency of the fastest configuration."""
        return self.entries[0].latency_ms

    @property
    def min_cost_cents(self) -> float:
        """Per-job cost of the cheapest configuration."""
        return min(e.per_job_cost_cents for e in self.entries)

    @property
    def fastest_cost_cents(self) -> float:
        """Per-job cost of the fastest configuration."""
        return self.entries[0].per_job_cost_cents

    @property
    def fastest_entry(self) -> ProfileEntry:
        """The fastest configuration entry."""
        return self.entries[0]

    def suffix_min_costs(self) -> tuple[float, ...]:
        """``suffix_min_costs()[j]`` = cheapest per-job cost among ``entries[j:]``.

        Used by the search to stop scanning a stage's (latency-ordered)
        configuration list as soon as no remaining entry could pass the cost
        blade — a sound shortcut because it only skips entries whose
        ``rscLow`` is provably at least the current pruning threshold.
        """
        costs = [e.per_job_cost_cents for e in self.entries]
        out = [0.0] * (len(costs) + 1)
        out[-1] = float("inf")
        running = float("inf")
        for j in range(len(costs) - 1, -1, -1):
            running = min(running, costs[j])
            out[j] = running
        return tuple(out)


@dataclass(frozen=True)
class PathCandidate:
    """One complete configuration path over the searched stages."""

    configs: tuple[Configuration, ...]
    latency_ms: float
    cost_cents: float

    @property
    def first_config(self) -> Configuration:
        """Configuration of the first (currently scheduled) stage."""
        return self.configs[0]

    def as_plan(self, stage_ids: Sequence[str]) -> dict[str, Configuration]:
        """Return the path as a stage->configuration mapping."""
        if len(stage_ids) != len(self.configs):
            raise ValueError(
                f"path covers {len(self.configs)} stages but {len(stage_ids)} ids were given"
            )
        return dict(zip(stage_ids, self.configs))


@dataclass
class ESG1QResult:
    """Output of one ESG_1Q invocation, plus search statistics."""

    paths: list[PathCandidate]
    target_latency_ms: float
    feasible: bool
    expansions: int
    pruned_time: int
    pruned_cost: int
    search_time_ms: float
    stage_ids: tuple[str, ...] = ()

    @property
    def best(self) -> PathCandidate | None:
        """The cheapest feasible path (or the fallback path when infeasible)."""
        return self.paths[0] if self.paths else None

    def candidate_configs(self) -> list[Configuration]:
        """First-stage configurations in priority order, de-duplicated."""
        seen: set[Configuration] = set()
        out: list[Configuration] = []
        for path in self.paths:
            cfg = path.first_config
            if cfg not in seen:
                seen.add(cfg)
                out.append(cfg)
        return out


@dataclass
class _PartialPath:
    """Internal: a prefix of a configuration path."""

    configs: list[Configuration] = field(default_factory=list)
    latency_ms: float = 0.0
    cost_cents: float = 0.0


def _suffix_bounds(stages: Sequence[StageSearchSpec]) -> SuffixBounds:
    return SuffixBounds.from_stages(
        [s.min_latency_ms for s in stages],
        [s.min_cost_cents for s in stages],
        [s.fastest_cost_cents for s in stages],
    )


def _default_paths(stages: Sequence[StageSearchSpec]) -> list[PathCandidate]:
    """The fallback path: every stage runs its fastest configuration."""
    configs = tuple(s.fastest_entry.config for s in stages)
    latency = sum(s.fastest_entry.latency_ms for s in stages)
    cost = sum(s.fastest_entry.per_job_cost_cents for s in stages)
    return [PathCandidate(configs=configs, latency_ms=latency, cost_cents=cost)]


def esg_1q_search(
    stages: Sequence[StageSearchSpec],
    target_latency_ms: float,
    *,
    k: int = 5,
    max_paths: int = 5000,
    max_expansions: int = 2_000_000,
) -> ESG1QResult:
    """Run the ESG_1Q search over ``stages`` with a latency target.

    Parameters
    ----------
    stages:
        The remaining stages of the function group, in execution order.  The
        first stage's entries should already be restricted to batch sizes
        that the queue can currently form.
    target_latency_ms:
        The group's latency quota (``GSLO`` in Algorithm 1).
    k:
        Number of solutions kept in the configuration priority queue
        (the paper's ``K``, default 5).
    max_paths:
        Safety cap on the number of surviving partial paths per stage; when
        exceeded, only the cheapest are kept (the paper's pruning normally
        keeps the frontier far below this).
    max_expansions:
        Safety cap on the total number of path extensions examined.

    Returns
    -------
    ESG1QResult
        Up to ``k`` complete paths sorted by increasing cost.  If no path
        meets the target, ``feasible`` is False and the fallback
        fastest-configuration path is returned instead.
    """
    if not stages:
        raise ValueError("esg_1q_search needs at least one stage")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if target_latency_ms <= 0:
        # A non-positive budget can legitimately happen when a request has
        # already blown its deadline; nothing can meet it, so return the
        # fastest path as the damage-control default.
        return ESG1QResult(
            paths=_default_paths(stages),
            target_latency_ms=target_latency_ms,
            feasible=False,
            expansions=0,
            pruned_time=0,
            pruned_cost=0,
            search_time_ms=0.0,
            stage_ids=tuple(s.stage_id for s in stages),
        )

    # repro: allow[REP001] search_time_ms is a diagnostic on the result (figures 10/11 report real search cost); scheduling overhead in simulations is modeled via per_expansion_ms, never this measurement
    start_time = _time.perf_counter()
    suffix = _suffix_bounds(stages)
    stage_suffix_min_costs = [stage.suffix_min_costs() for stage in stages]

    # best_full_paths_maxCost in the paper: the K-th smallest achievable
    # completion cost seen so far (list kept sorted, ascending).
    min_rsc: list[float] = [float("inf")] * k

    paths: list[_PartialPath] = [_PartialPath()]
    complete: list[PathCandidate] = []
    expansions = 0
    pruned_time = 0
    pruned_cost = 0
    truncated = False

    num_stages = len(stages)
    for stage_index, stage in enumerate(stages):
        is_last = stage_index == num_stages - 1
        new_paths: list[_PartialPath] = []
        # Expanding cheap prefixes first lets their rscFastest values tighten
        # the cost blade before expensive prefixes are considered.
        paths.sort(key=lambda p: p.cost_cents)
        suffix_min_cost = stage_suffix_min_costs[stage_index]
        remaining_min_cost = suffix.min_cost_suffix[stage_index + 1]
        for path in paths:
            if expansions >= max_expansions:
                truncated = True
                break
            for entry_index, entry in enumerate(stage.entries):
                # Early exit on the cost blade: if even the cheapest of the
                # remaining (slower) entries cannot beat the current K-th
                # best completion cost, none of them can survive.
                if (
                    path.cost_cents + suffix_min_cost[entry_index] + remaining_min_cost
                    >= min_rsc[-1]
                ):
                    pruned_cost += 1
                    break
                expansions += 1
                bounds = suffix.bounds_for_extension(
                    path.latency_ms,
                    path.cost_cents,
                    entry.latency_ms,
                    entry.per_job_cost_cents,
                    stage_index + 1,
                )
                if bounds.t_low_ms >= target_latency_ms:
                    # Entries are sorted by latency: every later entry can
                    # only be slower, so stop scanning this stage's list.
                    pruned_time += 1
                    break
                if bounds.rsc_low_cents >= min_rsc[-1]:
                    pruned_cost += 1
                    continue
                # Tighten the cost blade with this achievable completion.
                _insert_sorted_capped(min_rsc, bounds.rsc_fastest_cents)
                new_latency = path.latency_ms + entry.latency_ms
                new_cost = path.cost_cents + entry.per_job_cost_cents
                if is_last:
                    complete.append(
                        PathCandidate(
                            configs=tuple(path.configs) + (entry.config,),
                            latency_ms=new_latency,
                            cost_cents=new_cost,
                        )
                    )
                else:
                    new_paths.append(
                        _PartialPath(
                            configs=path.configs + [entry.config],
                            latency_ms=new_latency,
                            cost_cents=new_cost,
                        )
                    )
        if truncated:
            break
        if is_last:
            break
        if len(new_paths) > max_paths:
            new_paths.sort(key=lambda p: p.cost_cents)
            new_paths = new_paths[:max_paths]
        paths = new_paths
        if not paths:
            break

    # repro: allow[REP001] closes the diagnostic-only measurement started above
    search_time_ms = (_time.perf_counter() - start_time) * 1000.0

    complete.sort(key=lambda c: (c.cost_cents, c.latency_ms))
    feasible = bool(complete)
    if not feasible:
        result_paths = _default_paths(stages)
    else:
        result_paths = complete[:k]
    return ESG1QResult(
        paths=result_paths,
        target_latency_ms=target_latency_ms,
        feasible=feasible,
        expansions=expansions,
        pruned_time=pruned_time,
        pruned_cost=pruned_cost,
        search_time_ms=search_time_ms,
        stage_ids=tuple(s.stage_id for s in stages),
    )


def _insert_sorted_capped(values: list[float], new_value: float) -> None:
    """Insert ``new_value`` into the ascending list, keeping its length fixed."""
    if new_value >= values[-1]:
        return
    # Linear insertion: the list has K elements (K is small, default 5).
    for i, v in enumerate(values):
        if new_value < v:
            values.insert(i, new_value)
            values.pop()
            return
