"""Dominator-based SLO distribution (Section 3.3, "Dominator-based SLO
Distribution for Scalability").

Even with dual-blade pruning, searching the joint configuration space of a
long call sequence is expensive (the configuration space grows as ``m**k``).
ESG therefore splits the workflow's stages into *function groups* of bounded
size, assigns each group a share of the end-to-end SLO, and runs ESG_1Q
inside a group only.  The split is driven by the structure of the DAG:

1. build the **dominator tree** of the workflow DAG (as in compiler
   analysis: A dominates B when every path from the root to B passes
   through A);
2. label every stage with its **average normalised length (ANL)** — the
   average, over all configurations, of the stage's latency divided by the
   summed latency of all stages under the same configuration;
3. traverse the dominator tree bottom-up, **reducing** parallel branches
   into a single synthetic node whose ANL is the maximum branch ANL sum;
4. partition the resulting sequential list into groups of at most ``g``
   consecutive nodes (reduced nodes stay alone), and assign each group a
   share of the SLO proportional to its ANL; the reduction is then reversed
   so stages inside reduced branches receive their own quotas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.profiles.profiler import ProfileStore
from repro.workloads.dag import Workflow

__all__ = [
    "DominatorTree",
    "compute_anl",
    "StageGroup",
    "SLODistribution",
    "distribute_slo",
]

#: Name of the synthetic root inserted when a workflow has several sources.
VIRTUAL_ROOT = "__root__"


# ----------------------------------------------------------------------
# Dominator tree
# ----------------------------------------------------------------------
@dataclass
class DominatorTree:
    """Dominator relation of a workflow DAG.

    Built with the classic iterative data-flow formulation
    ``dom(v) = {v} | intersection over predecessors p of dom(p)``, which is
    ample for the small DAGs of serverless applications.
    """

    workflow: Workflow
    root: str = field(init=False)
    _dom: dict[str, frozenset[str]] = field(init=False, repr=False)
    _idom: dict[str, str | None] = field(init=False, repr=False)
    _children: dict[str, list[str]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        wf = self.workflow
        wf.validate()
        sources = wf.sources()
        nodes = wf.topological_order()
        preds: dict[str, list[str]] = {sid: wf.predecessors(sid) for sid in nodes}
        if len(sources) == 1:
            self.root = sources[0]
        else:
            self.root = VIRTUAL_ROOT
            nodes = [VIRTUAL_ROOT] + nodes
            preds[VIRTUAL_ROOT] = []
            for src in sources:
                preds[src] = preds[src] + [VIRTUAL_ROOT]

        all_nodes = frozenset(nodes)
        dom: dict[str, frozenset[str]] = {n: all_nodes for n in nodes}
        dom[self.root] = frozenset([self.root])

        changed = True
        while changed:
            changed = False
            for node in nodes:
                if node == self.root:
                    continue
                incoming = [dom[p] for p in preds[node]]
                new = frozenset.intersection(*incoming) if incoming else frozenset()
                new = new | {node}
                if new != dom[node]:
                    dom[node] = new
                    changed = True
        self._dom = dom

        # Immediate dominator: the strict dominator that is dominated by all
        # the node's other strict dominators.
        idom: dict[str, str | None] = {self.root: None}
        for node in nodes:
            if node == self.root:
                continue
            strict = dom[node] - {node}
            candidate = None
            for u in strict:
                if all(w == u or w in dom[u] for w in strict):
                    candidate = u
                    break
            idom[node] = candidate
        self._idom = idom

        children: dict[str, list[str]] = {n: [] for n in nodes}
        topo_index = {n: i for i, n in enumerate(nodes)}
        for node, parent in idom.items():
            if parent is not None:
                children[parent].append(node)
        for node in children:
            children[node].sort(key=lambda n: topo_index[n])
        self._children = children

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def dominators(self, stage_id: str) -> frozenset[str]:
        """All dominators of ``stage_id`` (including itself)."""
        return self._dom[stage_id]

    def dominates(self, a: str, b: str) -> bool:
        """True if ``a`` dominates ``b``."""
        return a in self._dom[b]

    def immediate_dominator(self, stage_id: str) -> str | None:
        """The immediate dominator (``None`` for the root)."""
        return self._idom[stage_id]

    def children(self, stage_id: str) -> list[str]:
        """Dominator-tree children (topological order)."""
        return list(self._children[stage_id])

    def nodes(self) -> list[str]:
        """All nodes of the dominator tree (including a virtual root, if any)."""
        return list(self._children)

    @property
    def has_virtual_root(self) -> bool:
        """True if a synthetic root was inserted for a multi-source DAG."""
        return self.root == VIRTUAL_ROOT


# ----------------------------------------------------------------------
# Average normalised length
# ----------------------------------------------------------------------
def compute_anl(workflow: Workflow, profile_store: ProfileStore) -> dict[str, float]:
    """Average normalised length of every stage (Section 3.3, step 2).

    For every configuration ``c`` of the shared configuration space, the
    normalised length of stage ``i`` is ``t_i(c) / sum_j t_j(c)``; the ANL
    is the mean of that quantity over all configurations.
    """
    stage_ids = workflow.topological_order()
    functions = {sid: workflow.function_of(sid) for sid in stage_ids}
    profiles = {sid: profile_store.profile(functions[sid]) for sid in stage_ids}

    anl = {sid: 0.0 for sid in stage_ids}
    configs = profile_store.space.configurations()
    for config in configs:
        latencies = {sid: profiles[sid].latency_ms(config) for sid in stage_ids}
        total = sum(latencies.values())
        for sid in stage_ids:
            anl[sid] += latencies[sid] / total
    n = len(configs)
    return {sid: value / n for sid, value in anl.items()}


# ----------------------------------------------------------------------
# Groups and the distribution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageGroup:
    """One function group with its SLO share."""

    index: int
    stage_ids: tuple[str, ...]
    slo_fraction: float
    stage_anl: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.stage_ids:
            raise ValueError("a stage group must contain at least one stage")
        if self.slo_fraction < 0:
            raise ValueError("slo_fraction must be >= 0")

    @property
    def anl_total(self) -> float:
        """Summed ANL of the group's stages."""
        return sum(self.stage_anl[sid] for sid in self.stage_ids)

    def stage_fraction(self, stage_id: str) -> float:
        """Share of the end-to-end SLO attributable to one stage of the group."""
        if stage_id not in self.stage_ids:
            raise KeyError(f"stage {stage_id!r} is not in group {self.index}")
        total = self.anl_total
        if total == 0.0:
            return self.slo_fraction / len(self.stage_ids)
        return self.slo_fraction * self.stage_anl[stage_id] / total

    def stages_from(self, stage_id: str) -> tuple[str, ...]:
        """The group's stages from ``stage_id`` (inclusive) to the group end."""
        idx = self.stage_ids.index(stage_id)
        return self.stage_ids[idx:]


@dataclass
class SLODistribution:
    """The result of dominator-based SLO distribution for one workflow."""

    workflow: Workflow
    group_size: int
    anl: dict[str, float]
    groups: list[StageGroup]
    _stage_to_group: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        mapping: dict[str, int] = {}
        for group in self.groups:
            for sid in group.stage_ids:
                if sid in mapping:
                    raise ValueError(f"stage {sid!r} appears in more than one group")
                mapping[sid] = group.index
        missing = set(self.workflow.stage_ids()) - set(mapping)
        if missing:
            raise ValueError(f"stages {sorted(missing)} are not covered by any group")
        self._stage_to_group = mapping

    def group_of(self, stage_id: str) -> StageGroup:
        """The group containing ``stage_id``."""
        return self.groups[self._stage_to_group[stage_id]]

    def stage_fraction(self, stage_id: str) -> float:
        """Per-stage share of the end-to-end SLO."""
        return self.group_of(stage_id).stage_fraction(stage_id)

    def total_fraction(self) -> float:
        """Sum of all group fractions (1.0 for linear workflows)."""
        return sum(g.slo_fraction for g in self.groups)

    def group_slo_ms(self, stage_id: str, end_to_end_slo_ms: float) -> float:
        """Absolute SLO quota of the group containing ``stage_id``."""
        return self.group_of(stage_id).slo_fraction * end_to_end_slo_ms


@dataclass
class _Item:
    """A node of the reduced sequential list: a stage or a reduced region."""

    anl: float
    stage_ids: tuple[str, ...]
    is_reduced: bool = False
    branch_items: tuple[tuple["_Item", ...], ...] = ()


def _build_item_list(tree: DominatorTree, workflow: Workflow, anl: Mapping[str, float], node: str) -> list[_Item]:
    """Post-order reduction of the dominator tree into a sequential item list."""
    items: list[_Item] = []
    if node != VIRTUAL_ROOT:
        items.append(_Item(anl=anl[node], stage_ids=(node,)))
    children = tree.children(node)
    if not children:
        return items
    if len(children) == 1:
        return items + _build_item_list(tree, workflow, anl, children[0])

    # Several dominator-tree children: the ones reachable (in the DAG) from a
    # sibling are continuations (typically the join node); the rest are the
    # parallel branches to reduce.
    reachable_from = {c: set(workflow.downstream_stages(c)) for c in children}
    continuations = [
        c for c in children if any(c in reachable_from[other] for other in children if other != c)
    ]
    branches = [c for c in children if c not in continuations]
    if not branches:
        # Degenerate (should not happen in a DAG): treat all as continuations.
        branches, continuations = children[:1], children[1:]

    branch_lists = [tuple(_build_item_list(tree, workflow, anl, b)) for b in branches]
    reduced_anl = max(sum(item.anl for item in bl) for bl in branch_lists)
    subsumed = tuple(sid for bl in branch_lists for item in bl for sid in item.stage_ids)
    items.append(
        _Item(anl=reduced_anl, stage_ids=subsumed, is_reduced=True, branch_items=tuple(branch_lists))
    )
    # Continuations execute after the branches have joined; process them in
    # topological order.
    topo_index = {sid: i for i, sid in enumerate(workflow.topological_order())}
    for cont in sorted(continuations, key=lambda c: topo_index[c]):
        items.extend(_build_item_list(tree, workflow, anl, cont))
    return items


def _partition_items(
    items: Sequence[_Item],
    budget_fraction: float,
    group_size: int,
    anl: Mapping[str, float],
    groups_out: list[StageGroup],
) -> None:
    """Partition an item list into groups and append them to ``groups_out``.

    ``budget_fraction`` is the share of the end-to-end SLO allocated to
    executing this item list sequentially.  Plain items are chunked into
    groups of at most ``group_size``; a reduced item keeps its share for
    itself and recursively partitions each of its branches with that full
    share (branches execute in parallel).
    """
    total_anl = sum(item.anl for item in items)
    if total_anl <= 0.0:
        total_anl = float(len(items))

    pending: list[_Item] = []

    def flush_pending() -> None:
        nonlocal pending
        if not pending:
            return
        stage_ids = tuple(sid for item in pending for sid in item.stage_ids)
        chunk_anl = sum(item.anl for item in pending)
        fraction = budget_fraction * chunk_anl / total_anl
        groups_out.append(
            StageGroup(
                index=len(groups_out),
                stage_ids=stage_ids,
                slo_fraction=fraction,
                stage_anl={sid: anl[sid] for sid in stage_ids},
            )
        )
        pending = []

    for item in items:
        if item.is_reduced:
            flush_pending()
            region_fraction = budget_fraction * item.anl / total_anl
            for branch in item.branch_items:
                _partition_items(branch, region_fraction, group_size, anl, groups_out)
        else:
            pending.append(item)
            if len(pending) >= group_size:
                flush_pending()
    flush_pending()


def distribute_slo(
    workflow: Workflow,
    profile_store: ProfileStore,
    *,
    group_size: int = 3,
    anl: Mapping[str, float] | None = None,
) -> SLODistribution:
    """Run the full dominator-based SLO distribution for ``workflow``.

    Parameters
    ----------
    workflow:
        The application DAG.
    profile_store:
        Profiles used to compute the ANL labels.
    group_size:
        Maximum number of consecutive stages per function group (the paper's
        default is 3; Section 5.4 reports the search-time blow-up at 4).
    anl:
        Precomputed ANL labels (mainly for tests); computed from the
        profiles when omitted.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    anl_map = dict(anl) if anl is not None else compute_anl(workflow, profile_store)
    missing = set(workflow.stage_ids()) - set(anl_map)
    if missing:
        raise ValueError(f"ANL labels missing for stages {sorted(missing)}")

    tree = DominatorTree(workflow=workflow)
    items = _build_item_list(tree, workflow, anl_map, tree.root)
    groups: list[StageGroup] = []
    _partition_items(items, 1.0, group_size, anl_map, groups)
    return SLODistribution(workflow=workflow, group_size=group_size, anl=anl_map, groups=groups)
