"""Dual-blade pruning bounds for the ESG_1Q search (Section 3.3).

When a partial configuration path ``p`` covers the first ``i`` stages of a
function sequence, ESG_1Q computes three quantities:

* ``tLow``   — lower bound of the end-to-end time of every full path
  prefixed by ``p``: the time of the stages in ``p`` plus the minimum time
  of every remaining stage;
* ``rscLow`` — lower bound of the per-job resource cost of every full path
  prefixed by ``p``: the cost of ``p`` plus the minimum cost of every
  remaining stage;
* ``rscFastest`` — the cost of completing ``p`` with the *fastest*
  configuration of every remaining stage; this is an achievable completion
  cost, so it is used to tighten ``best_full_paths_maxCost`` (the K-th best
  known upper bound).

The suffix minima only depend on the stage list, so they are precomputed
once per search in :class:`SuffixBounds`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["SuffixBounds", "PathBounds"]


@dataclass(frozen=True)
class PathBounds:
    """The three bounds of one partial path extension."""

    t_low_ms: float
    rsc_low_cents: float
    rsc_fastest_cents: float


@dataclass(frozen=True)
class SuffixBounds:
    """Precomputed suffix aggregates over a stage sequence.

    ``min_latency_suffix[i]`` is the sum over stages ``i..end`` of each
    stage's minimum latency (over its configuration list); likewise for the
    minimum per-job cost and for the per-job cost of each stage's *fastest*
    configuration.  Index ``len(stages)`` is 0 for all three, so the bounds
    of a complete path degenerate to its actual time and cost.
    """

    min_latency_suffix: tuple[float, ...]
    min_cost_suffix: tuple[float, ...]
    fastest_cost_suffix: tuple[float, ...]

    @classmethod
    def from_stages(
        cls,
        stage_min_latency_ms: Sequence[float],
        stage_min_cost_cents: Sequence[float],
        stage_fastest_cost_cents: Sequence[float],
    ) -> "SuffixBounds":
        """Build suffix sums from per-stage minima.

        Parameters
        ----------
        stage_min_latency_ms:
            Minimum latency of each stage over its configuration list.
        stage_min_cost_cents:
            Minimum per-job cost of each stage.
        stage_fastest_cost_cents:
            Per-job cost of each stage's fastest configuration.
        """
        n = len(stage_min_latency_ms)
        if not (n == len(stage_min_cost_cents) == len(stage_fastest_cost_cents)):
            raise ValueError("per-stage minima must all have the same length")
        min_lat = [0.0] * (n + 1)
        min_cost = [0.0] * (n + 1)
        fast_cost = [0.0] * (n + 1)
        for i in range(n - 1, -1, -1):
            if stage_min_latency_ms[i] < 0 or stage_min_cost_cents[i] < 0 or stage_fastest_cost_cents[i] < 0:
                raise ValueError("stage minima must be non-negative")
            min_lat[i] = stage_min_latency_ms[i] + min_lat[i + 1]
            min_cost[i] = stage_min_cost_cents[i] + min_cost[i + 1]
            fast_cost[i] = stage_fastest_cost_cents[i] + fast_cost[i + 1]
        return cls(
            min_latency_suffix=tuple(min_lat),
            min_cost_suffix=tuple(min_cost),
            fastest_cost_suffix=tuple(fast_cost),
        )

    @property
    def num_stages(self) -> int:
        """Number of stages covered by the suffix tables."""
        return len(self.min_latency_suffix) - 1

    def minimum_total_latency_ms(self) -> float:
        """Smallest achievable end-to-end latency (every stage at its fastest)."""
        return self.min_latency_suffix[0]

    def minimum_total_cost_cents(self) -> float:
        """Smallest achievable total per-job cost (every stage at its cheapest)."""
        return self.min_cost_suffix[0]

    def bounds_for_extension(
        self,
        prefix_latency_ms: float,
        prefix_cost_cents: float,
        entry_latency_ms: float,
        entry_cost_cents: float,
        next_stage_index: int,
    ) -> PathBounds:
        """Bounds after appending one configuration entry to a partial path.

        Parameters
        ----------
        prefix_latency_ms / prefix_cost_cents:
            Accumulated time and per-job cost of the partial path before the
            extension (stages ``0..next_stage_index-2``).
        entry_latency_ms / entry_cost_cents:
            The configuration entry being appended (stage
            ``next_stage_index - 1``).
        next_stage_index:
            Index of the first stage *not* covered after the extension.
        """
        if not 0 <= next_stage_index <= self.num_stages:
            raise IndexError(
                f"next_stage_index {next_stage_index} out of range [0, {self.num_stages}]"
            )
        latency = prefix_latency_ms + entry_latency_ms
        cost = prefix_cost_cents + entry_cost_cents
        return PathBounds(
            t_low_ms=latency + self.min_latency_suffix[next_stage_index],
            rsc_low_cents=cost + self.min_cost_suffix[next_stage_index],
            rsc_fastest_cents=cost + self.fastest_cost_suffix[next_stage_index],
        )
