"""Re-export of the configuration model under the paper-facing ``core`` API.

The :class:`Configuration` triple and :class:`ConfigurationSpace` live in
:mod:`repro.profiles.configuration` (the profiler needs them and the import
graph must stay acyclic); schedulers and user code are encouraged to import
them from here.
"""

from repro.profiles.configuration import (
    DEFAULT_BATCH_OPTIONS,
    DEFAULT_VCPU_OPTIONS,
    DEFAULT_VGPU_OPTIONS,
    Configuration,
    ConfigurationSpace,
    product_space_size,
)

__all__ = [
    "Configuration",
    "ConfigurationSpace",
    "product_space_size",
    "DEFAULT_BATCH_OPTIONS",
    "DEFAULT_VCPU_OPTIONS",
    "DEFAULT_VGPU_OPTIONS",
]
