"""ESG_Dispatch: locality-first mapping of tasks to invoker nodes (Section 3.4).

The order of preference is:

1. the invoker that ran the *predecessor* stage of the workflow (so the
   stage's input can be passed through the local file system instead of
   remote storage) — only applicable to non-source stages;
2. the function's *home invoker* (OpenWhisk's hash-based default, which
   maximises warm starts);
3. any other invoker holding a warm container for the function;
4. a cold invoker, choosing the one with the most available resources.

A node is only eligible if it currently has the vCPUs and vGPUs the chosen
configuration needs.
"""

from __future__ import annotations

from repro.cluster.cluster import ClusterState
from repro.profiles.configuration import Configuration

__all__ = ["locality_first_invoker"]


def locality_first_invoker(
    cluster: ClusterState,
    app_name: str,
    function_name: str,
    config: Configuration,
    now_ms: float,
    *,
    predecessor_invoker_id: int | None = None,
) -> int | None:
    """Select an invoker for a task, preferring data locality and warm starts.

    Parameters
    ----------
    cluster:
        Current cluster state.
    app_name / function_name:
        Identify the AFW queue being dispatched (used for home-invoker
        hashing).
    config:
        The resource configuration the task needs.
    now_ms:
        Current simulation time (warm-container checks are time dependent).
    predecessor_invoker_id:
        The node that executed the predecessor stage of the request being
        dispatched, if any.

    Returns
    -------
    int | None
        The selected invoker id, or ``None`` when no node can currently host
        the configuration.
    """
    any_warm_elsewhere = cluster.has_warm_invoker(function_name, now_ms)

    # 1. Predecessor's node (data locality).  If taking it would force a cold
    #    start while a warm container exists elsewhere, defer it: a multi-
    #    second model load is never worth saving a few milliseconds of data
    #    transfer, and the controller knows both costs from the profiles.
    if predecessor_invoker_id is not None:
        predecessor = cluster.invoker(predecessor_invoker_id)
        if predecessor.can_fit(config) and (
            predecessor.has_any_container(function_name, now_ms) or not any_warm_elsewhere
        ):
            return predecessor_invoker_id

    # 2. Home invoker.
    home_id = cluster.home_invoker_id(app_name, function_name)
    home = cluster.invoker(home_id)
    if home.can_fit(config) and (
        home.has_any_container(function_name, now_ms) or not any_warm_elsewhere
    ):
        return home_id

    # 3. Other warm invokers (most available resources first).
    warm = [
        inv
        for inv in cluster.warm_invokers_for(function_name, now_ms)
        if inv.can_fit(config) and inv.invoker_id != home_id
    ]
    if warm:
        best = max(warm, key=lambda inv: (inv.available_vgpus, inv.available_vcpus, -inv.invoker_id))
        return best.invoker_id

    # 3b. Locality / home fallbacks without the warm-container requirement.
    if predecessor_invoker_id is not None and cluster.invoker(predecessor_invoker_id).can_fit(config):
        return predecessor_invoker_id
    if home.can_fit(config):
        return home_id

    # 4. Cold fallback: the fitting node with the most available resources.
    fallback = cluster.most_available_invoker(config)
    if fallback is not None:
        return fallback.invoker_id
    return None
