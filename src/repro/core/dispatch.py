"""ESG_Dispatch: locality-first mapping of tasks to invoker nodes (Section 3.4).

The order of preference is:

1. the invoker that ran the *predecessor* stage of the workflow (so the
   stage's input can be passed through the local file system instead of
   remote storage) — only applicable to non-source stages;
2. the function's *home invoker* (OpenWhisk's hash-based default, which
   maximises warm starts);
3. any other invoker holding a warm container for the function;
4. a cold invoker, choosing the one with the most available resources.

A node is only eligible if it currently has the vCPUs and vGPUs the chosen
configuration needs.
"""

from __future__ import annotations

from repro.cluster.cluster import ClusterState
from repro.cluster.container import ContainerState
from repro.cluster.invoker import Invoker
from repro.profiles.configuration import Configuration

__all__ = ["locality_first_invoker", "locality_first_invoker_fast"]

_BUSY = ContainerState.BUSY
_WARM = ContainerState.WARM
_STARTING = ContainerState.STARTING


def _has_resident(invoker: Invoker, function_name: str, now_ms: float) -> bool:
    """Inlined ``invoker.has_warm_container``: any WARM/BUSY live container."""
    for container in invoker._live.get(function_name, ()):
        state = container.state
        if state is _BUSY or (
            state is _WARM and container.warm_at_ms <= now_ms < container.expires_at_ms
        ):
            return True
    return False


def _has_any(invoker: Invoker, function_name: str, now_ms: float) -> bool:
    """Inlined ``invoker.has_any_container``: resident or starting container."""
    for container in invoker._live.get(function_name, ()):
        state = container.state
        if (
            state is _BUSY
            or state is _STARTING
            or (state is _WARM and container.warm_at_ms <= now_ms < container.expires_at_ms)
        ):
            return True
    return False


def locality_first_invoker(
    cluster: ClusterState,
    app_name: str,
    function_name: str,
    config: Configuration,
    now_ms: float,
    *,
    predecessor_invoker_id: int | None = None,
) -> int | None:
    """Select an invoker for a task, preferring data locality and warm starts.

    Parameters
    ----------
    cluster:
        Current cluster state.
    app_name / function_name:
        Identify the AFW queue being dispatched (used for home-invoker
        hashing).
    config:
        The resource configuration the task needs.
    now_ms:
        Current simulation time (warm-container checks are time dependent).
    predecessor_invoker_id:
        The node that executed the predecessor stage of the request being
        dispatched, if any.

    Returns
    -------
    int | None
        The selected invoker id, or ``None`` when no node can currently host
        the configuration.
    """
    any_warm_elsewhere = cluster.has_warm_invoker(function_name, now_ms)

    # 1. Predecessor's node (data locality).  If taking it would force a cold
    #    start while a warm container exists elsewhere, defer it: a multi-
    #    second model load is never worth saving a few milliseconds of data
    #    transfer, and the controller knows both costs from the profiles.
    if predecessor_invoker_id is not None:
        predecessor = cluster.invoker(predecessor_invoker_id)
        if predecessor.can_fit(config) and (
            predecessor.has_any_container(function_name, now_ms) or not any_warm_elsewhere
        ):
            return predecessor_invoker_id

    # 2. Home invoker.
    home_id = cluster.home_invoker_id(app_name, function_name)
    home = cluster.invoker(home_id)
    if home.can_fit(config) and (
        home.has_any_container(function_name, now_ms) or not any_warm_elsewhere
    ):
        return home_id

    # 3. Other warm invokers (most available resources first).
    warm = [
        inv
        for inv in cluster.warm_invokers_for(function_name, now_ms)
        if inv.can_fit(config) and inv.invoker_id != home_id
    ]
    if warm:
        best = max(warm, key=lambda inv: (inv.available_vgpus, inv.available_vcpus, -inv.invoker_id))
        return best.invoker_id

    # 3b. Locality / home fallbacks without the warm-container requirement.
    if predecessor_invoker_id is not None and cluster.invoker(predecessor_invoker_id).can_fit(config):
        return predecessor_invoker_id
    if home.can_fit(config):
        return home_id

    # 4. Cold fallback: the fitting node with the most available resources.
    fallback = cluster.most_available_invoker(config)
    if fallback is not None:
        return fallback.invoker_id
    return None


def locality_first_invoker_fast(
    cluster: ClusterState,
    app_name: str,
    function_name: str,
    config: Configuration,
    now_ms: float,
    *,
    predecessor_invoker_id: int | None = None,
) -> int | None:
    """``loop_mode="fast"`` variant of :func:`locality_first_invoker`.

    Implements the identical selection rule with the per-call constant
    costs stripped: residency checks walk the invokers' live-container
    lists directly, capacity checks read the resource counters without the
    ``can_fit`` indirection, and the warm-node argmax of step 3 iterates
    the cluster's warm-index set unsorted — its ``(vgpus, vcpus, -id)``
    key is unique per node, so the winner cannot depend on iteration
    order.  Returns the same invoker id as the reference function for any
    cluster state, in both indexed and scan mode.
    """
    invokers = cluster.invokers
    need_vcpus = config.vcpus
    need_vgpus = config.vgpus

    if cluster._indexed:
        candidates = cluster._warm_index.get(function_name, ())
    else:
        candidates = range(len(invokers))
    any_warm_elsewhere = False
    for i in candidates:
        if _has_resident(invokers[i], function_name, now_ms):
            any_warm_elsewhere = True
            break

    # 1. Predecessor's node (data locality).
    if predecessor_invoker_id is not None:
        predecessor = invokers[predecessor_invoker_id]
        if (
            need_vcpus <= predecessor.total_vcpus - predecessor._used_vcpus
            and need_vgpus
            <= predecessor.gpu.total_vgpus - predecessor.gpu._used_vgpus
            and (
                _has_any(predecessor, function_name, now_ms) or not any_warm_elsewhere
            )
        ):
            return predecessor_invoker_id

    # 2. Home invoker.
    home_id = cluster.home_invoker_id(app_name, function_name)
    home = invokers[home_id]
    home_fits = (
        need_vcpus <= home.total_vcpus - home._used_vcpus
        and need_vgpus <= home.gpu.total_vgpus - home.gpu._used_vgpus
    )
    if home_fits and (_has_any(home, function_name, now_ms) or not any_warm_elsewhere):
        return home_id

    # 3. Other warm invokers (most available resources first).
    best_key: tuple[int, int, int] | None = None
    best_id: int | None = None
    for i in candidates:
        if i == home_id:
            continue
        invoker = invokers[i]
        if not _has_resident(invoker, function_name, now_ms):
            continue
        avail_vcpus = invoker.total_vcpus - invoker._used_vcpus
        gpu = invoker.gpu
        avail_vgpus = gpu.total_vgpus - gpu._used_vgpus
        if need_vcpus > avail_vcpus or need_vgpus > avail_vgpus:
            continue
        key = (avail_vgpus, avail_vcpus, -i)
        if best_key is None or key > best_key:
            best_key = key
            best_id = i
    if best_id is not None:
        return best_id

    # 3b. Locality / home fallbacks without the warm-container requirement.
    if predecessor_invoker_id is not None:
        predecessor = invokers[predecessor_invoker_id]
        if (
            need_vcpus <= predecessor.total_vcpus - predecessor._used_vcpus
            and need_vgpus
            <= predecessor.gpu.total_vgpus - predecessor.gpu._used_vgpus
        ):
            return predecessor_invoker_id
    if home_fits:
        return home_id

    # 4. Cold fallback: the fitting node with the most available resources.
    fallback = cluster.most_available_invoker(config)
    if fallback is not None:
        return fallback.invoker_id
    return None
