"""The ESG scheduling policy.

:class:`ESGPolicy` glues the pieces of the paper's algorithm into a
:class:`repro.cluster.policy_api.SchedulingPolicy`:

* on bind it runs the dominator-based SLO distribution once per workflow;
* on every :meth:`plan` call (i.e. before *every* stage's dispatch — the
  "optimality-guided adaptive" aspect) it derives the latency quota of the
  current function group from the request's remaining budget and runs the
  ESG_1Q dual-blade-pruned search over the group's remaining stages;
* :meth:`select_invoker` implements the locality-first ESG_Dispatch.

Two ablation switches reproduce Figure 12 (``gpu_sharing`` and ``batching``)
and one reproduces the static-planning comparison (``adaptive=False`` plans
the whole workflow at the first stage and sticks to it, as Orion/Aquatope
do).
"""

from __future__ import annotations

from repro.cluster.policy_api import AFWQueue, SchedulingDecision, SchedulingContext, SchedulingPolicy
from repro.core.dispatch import locality_first_invoker, locality_first_invoker_fast
from repro.core.dominator import SLODistribution, distribute_slo
from repro.core.esg_1q import StageSearchSpec, esg_1q_search
from repro.profiles.configuration import Configuration
from repro.profiles.profiler import FunctionProfile, ProfileEntry
from repro.workloads.request import Request

__all__ = ["ESGPolicy"]


class ESGPolicy(SchedulingPolicy):
    """ESG: efficient serverless scheduling for shareable GPUs."""

    name = "ESG"

    def __init__(
        self,
        *,
        k: int = 5,
        group_size: int = 3,
        adaptive: bool = True,
        gpu_sharing: bool = True,
        batching: bool = True,
        safety_margin: float = 0.12,
        max_paths: int = 5000,
        per_expansion_ms: float | None = 0.001,
        plan_cache: bool = True,
        name: str | None = None,
    ) -> None:
        """Create the policy.

        Parameters
        ----------
        k:
            Number of solutions kept in the configuration priority queue
            (the paper's ``K``; default 5, studied in Figure 11).
        group_size:
            Maximum function-group size for the dominator-based SLO
            distribution (default 3, Section 5.4).
        adaptive:
            When True (the paper's ESG) the search is re-run before every
            stage dispatch; when False a whole-workflow plan is computed at
            the first stage and reused, like the static baselines.
        gpu_sharing:
            When False every task is forced to occupy all vGPUs of a GPU
            (the "without GPU sharing" ablation of Figure 12).
        batching:
            When False only batch size 1 is considered (the "without
            batching" ablation of Figure 12).
        safety_margin:
            Fraction of the group's latency quota reserved as head-room for
            effects the profiles do not capture (performance noise, data
            transfer, scheduling overhead).  The search target becomes
            ``quota * (1 - safety_margin)``.
        max_paths:
            Safety cap forwarded to the ESG_1Q search.
        per_expansion_ms:
            Models the per-decision scheduling overhead as
            ``expansions * per_expansion_ms`` (the same idiom Orion uses),
            keeping runs deterministic and machine-independent; the default
            is calibrated so the distribution lands in the paper's 3-8 ms
            range.  Pass ``None`` to fall back to the controller's
            wall-clock measurement of ``plan()``.
        plan_cache:
            Memoize :meth:`plan` keyed by the exact search inputs — the
            queue-head signature ``(queue key, queue length)`` and the
            pressure signature ``target_ms`` (the remaining-budget quota,
            which already folds in every time- and urgency-dependent
            input).  The ESG_1Q search is a pure function of those inputs,
            so cache hits return byte-identical decisions (including the
            modeled overhead); the controller's recheck retries within one
            tick are the main beneficiary.  Only active when
            ``per_expansion_ms`` models overhead deterministically —
            wall-clock measurement mode always re-runs the search.
        name:
            Override the reported policy name (used by the ablation study).
        """
        super().__init__()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if group_size < 1:
            raise ValueError(f"group_size must be >= 1, got {group_size}")
        if not 0.0 <= safety_margin < 1.0:
            raise ValueError(f"safety_margin must be in [0, 1), got {safety_margin}")
        self.k = k
        self.group_size = group_size
        self.adaptive = adaptive
        self._gpu_sharing = gpu_sharing
        self._batching = batching
        self.safety_margin = safety_margin
        self.max_paths = max_paths
        if per_expansion_ms is not None and per_expansion_ms < 0:
            raise ValueError(f"per_expansion_ms must be >= 0, got {per_expansion_ms}")
        self.per_expansion_ms = per_expansion_ms
        # With a modeled overhead the wall-clock plan timing is discarded
        # anyway, so the fast loop may skip measuring it.
        self.deterministic_overhead = per_expansion_ms is not None
        if name is not None:
            self.name = name
        self._distributions: dict[str, SLODistribution] = {}
        self._plan_cache_enabled = plan_cache and per_expansion_ms is not None
        self._plan_cache: dict[tuple, SchedulingDecision] = {}
        #: Fast-mode memo for :meth:`_group_and_target` on *fresh* requests
        #: (no stage completed yet): their remaining-stage set is the whole
        #: workflow, so the group stages and both fraction sums are a pure
        #: function of (app, stage).  Only the remaining-budget factor is
        #: per-request; it is applied with the original operation order.
        self._fresh_group_cache: dict[tuple[str, str], tuple[tuple[str, ...], float, float]] = {}

    # ------------------------------------------------------------------
    # SchedulingPolicy lifecycle
    # ------------------------------------------------------------------
    def on_bind(self, context: SchedulingContext) -> None:
        """Precompute the dominator-based SLO distribution of every workflow."""
        self._distributions = {
            name: distribute_slo(workflow, context.profile_store, group_size=self.group_size)
            for name, workflow in context.workflows.items()
        }
        self.invalidate_plan_cache()

    def invalidate_plan_cache(self) -> None:
        """Drop memoized plans (call after changing profiles or distributions)."""
        self._plan_cache.clear()
        self._fresh_group_cache.clear()

    def distribution_for(self, app_name: str) -> SLODistribution:
        """The SLO distribution of an application (computed lazily if needed)."""
        if app_name not in self._distributions:
            workflow = self.context.workflows[app_name]
            self._distributions[app_name] = distribute_slo(
                workflow, self.context.profile_store, group_size=self.group_size
            )
        return self._distributions[app_name]

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, queue: AFWQueue, now_ms: float) -> SchedulingDecision | None:
        """Run ESG_1Q for the queue's current function group."""
        if queue.is_empty:
            return None
        if not self.adaptive:
            preplanned = self._preplanned_decision(queue, now_ms)
            if preplanned is not None:
                return preplanned

        group_stage_ids, target_ms = self._group_and_target(queue, now_ms)
        cache_key: tuple | None = None
        if self._plan_cache_enabled:
            # The search is a pure function of (stage group, queue length,
            # latency quota): the quota folds in the most urgent request's
            # remaining budget (hence now_ms), and the queue length bounds
            # the first stage's batch entries.  Profiles are immutable for
            # the lifetime of a bound policy.
            cache_key = (queue.app_name, queue.stage_id, len(queue), target_ms)
            cached = self._plan_cache.get(cache_key)
            if cached is not None:
                return cached
        stages = self._stage_specs(queue, group_stage_ids)
        result = esg_1q_search(
            stages, target_ms, k=self.k, max_paths=self.max_paths
        )
        candidates = result.candidate_configs()
        best = result.best
        planned = best.as_plan(group_stage_ids) if best is not None else None
        decision = SchedulingDecision(
            candidates=candidates,
            planned_path=planned,
            reported_overhead_ms=self._modeled_overhead_ms(result.expansions),
        )
        if cache_key is not None:
            if len(self._plan_cache) >= 4096:
                self._plan_cache.clear()
            self._plan_cache[cache_key] = decision
        return decision

    def _modeled_overhead_ms(self, expansions: int) -> float | None:
        """Deterministic overhead estimate (None = let the controller measure)."""
        if self.per_expansion_ms is None:
            return None
        return expansions * self.per_expansion_ms

    def _group_and_target(self, queue: AFWQueue, now_ms: float) -> tuple[list[str], float]:
        """Determine the remaining group stages and their latency quota.

        The quota follows the dominator-based distribution but is applied to
        the *remaining* budget of the most urgent queued request, which is
        what makes ESG adaptive: delays in earlier stages automatically
        shrink (and slack grows) the quota of later groups.
        """
        jobs = queue.jobs
        if self.fast_mode and len(jobs) == 1:
            # min() over a single job is that job; skip the urgency scan.
            request = jobs[0].request
        else:
            request = queue.most_urgent_request(now_ms)
        if (
            self.fast_mode
            and not request.stage_completion_ms
            and self._context is not None
            and self._context.workflows.get(queue.app_name) is request.workflow
        ):
            # Fresh request of the app's registered workflow: the remaining
            # set is every stage, so everything except the budget factor is
            # memoizable per (app, stage).  Factory-built per-request
            # workflows fail the identity check and take the exact path.
            key = (queue.app_name, queue.stage_id)
            cached = self._fresh_group_cache.get(key)
            if cached is None:
                cached = self._fresh_group_and_fractions(queue, request)
                self._fresh_group_cache[key] = cached
            group_ids, group_remaining, remaining_total = cached
            group_stage_ids = list(group_ids)
            # Inlined ``request.remaining_budget_ms``: same (arrival + slo)
            # - now association as the deadline_ms property composition.
            remaining_budget = request.arrival_ms + request.slo_ms - now_ms
            headroom = 1.0 - self.safety_margin
            if remaining_total <= 0.0:
                return group_stage_ids, remaining_budget * headroom
            return (
                group_stage_ids,
                remaining_budget * headroom * group_remaining / remaining_total,
            )

        dist = self.distribution_for(queue.app_name)
        group = dist.group_of(queue.stage_id)
        group_stage_ids = list(group.stages_from(queue.stage_id))

        remaining_budget = request.remaining_budget_ms(now_ms)
        remaining = set(request.remaining_stage_ids())
        remaining.add(queue.stage_id)

        # Summed in sorted order: float addition is not associative, and set
        # iteration order varies with hash randomisation across processes.
        remaining_total = sum(dist.stage_fraction(sid) for sid in sorted(remaining))
        group_remaining = sum(
            dist.stage_fraction(sid) for sid in group_stage_ids if sid in remaining
        )
        headroom = 1.0 - self.safety_margin
        if remaining_total <= 0.0:
            return group_stage_ids, remaining_budget * headroom
        return (
            group_stage_ids,
            remaining_budget * headroom * group_remaining / remaining_total,
        )

    def _fresh_group_and_fractions(
        self, queue: AFWQueue, request: Request
    ) -> tuple[tuple[str, ...], float, float]:
        """Compute the memoized fresh-request triple with the exact float
        fold order of :meth:`_group_and_target`'s general path."""
        dist = self.distribution_for(queue.app_name)
        group = dist.group_of(queue.stage_id)
        group_stage_ids = list(group.stages_from(queue.stage_id))
        remaining = set(request.remaining_stage_ids())
        remaining.add(queue.stage_id)
        remaining_total = sum(dist.stage_fraction(sid) for sid in sorted(remaining))
        group_remaining = sum(
            dist.stage_fraction(sid) for sid in group_stage_ids if sid in remaining
        )
        return tuple(group_stage_ids), group_remaining, remaining_total

    def _stage_specs(self, queue: AFWQueue, group_stage_ids: list[str]) -> list[StageSearchSpec]:
        """Build the per-stage search inputs, applying the ablation filters."""
        store = self.context.profile_store
        workflow = queue.workflow
        specs: list[StageSearchSpec] = []
        for position, stage_id in enumerate(group_stage_ids):
            profile = store.profile(workflow.function_of(stage_id))
            max_batch = len(queue) if position == 0 else None
            entries = self._filtered_entries(profile, max_batch)
            specs.append(
                StageSearchSpec(
                    stage_id=stage_id,
                    function_name=profile.spec.name,
                    entries=entries,
                )
            )
        return specs

    def _filtered_entries(
        self, profile: FunctionProfile, max_batch: int | None
    ) -> tuple[ProfileEntry, ...]:
        """Latency-sorted entries honouring the batching / GPU-sharing switches."""
        space = self.context.config_space
        entries = profile.sorted_by_latency(max_batch=max_batch)
        if not self._batching:
            min_batch = space.batch_options[0]
            entries = tuple(e for e in entries if e.config.batch_size == min_batch)
        if not self._gpu_sharing:
            full_gpu = space.vgpu_options[-1]
            entries = tuple(e for e in entries if e.config.vgpus == full_gpu)
        if not entries:
            # The filters must never leave a stage without options.
            entries = (profile.fastest_entry,)
        return entries

    # ------------------------------------------------------------------
    # Static (non-adaptive) variant used for ablation
    # ------------------------------------------------------------------
    def _preplanned_decision(self, queue: AFWQueue, now_ms: float) -> SchedulingDecision | None:
        """Reuse (or create) a whole-workflow plan instead of re-searching."""
        job = queue.oldest_job()
        request = job.request
        # Reusing an existing plan is a dictionary lookup; only the initial
        # whole-workflow search carries a modeled cost.
        plan_overhead_ms = 0.0 if self.per_expansion_ms is not None else None
        if request.static_plan is None:
            # First stage of this request: plan the whole workflow once.
            workflow = queue.workflow
            stage_ids = workflow.topological_order()
            stages = self._stage_specs_for_plan(queue, stage_ids)
            result = esg_1q_search(
                stages, request.slo_ms, k=self.k, max_paths=self.max_paths
            )
            best = result.best
            if best is None:
                return None
            request.static_plan = best.as_plan(stage_ids)
            plan_overhead_ms = self._modeled_overhead_ms(result.expansions)
        planned = request.static_plan.get(queue.stage_id)
        if planned is None:
            return None
        miss = planned.batch_size > len(queue)
        if miss:
            request.plan_miss_count += 1
            planned = planned.with_batch(max(1, len(queue)))
        return SchedulingDecision(
            candidates=[planned],
            planned_path=dict(request.static_plan),
            used_preplanned=True,
            plan_miss=miss,
            reported_overhead_ms=plan_overhead_ms,
        )

    def _stage_specs_for_plan(self, queue: AFWQueue, stage_ids: list[str]) -> list[StageSearchSpec]:
        store = self.context.profile_store
        workflow = queue.workflow
        specs = []
        for position, stage_id in enumerate(stage_ids):
            profile = store.profile(workflow.function_of(stage_id))
            max_batch = len(queue) if position == 0 and stage_id == queue.stage_id else None
            entries = self._filtered_entries(profile, max_batch)
            specs.append(
                StageSearchSpec(stage_id=stage_id, function_name=profile.spec.name, entries=entries)
            )
        return specs

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def select_invoker(
        self, config: Configuration, queue: AFWQueue, now_ms: float
    ) -> int | None:
        """ESG_Dispatch: predecessor node, home node, warm nodes, cold node."""
        if self.fast_mode:
            predecessor_id = None
            jobs = queue.jobs
            if jobs:
                request = jobs[0].request
                preds = request.workflow.topology().pred[queue.stage_id]
                if preds:
                    # Inlined Request.predecessor_invoker over the cached
                    # topology (identical latest-finishing tie-break).
                    stage_invoker = request.stage_invoker
                    if len(preds) == 1:
                        predecessor_id = stage_invoker.get(preds[0])
                    else:
                        done = [p for p in preds if p in stage_invoker]
                        if done:
                            scm = request.stage_completion_ms
                            predecessor_id = stage_invoker[max(done, key=scm.__getitem__)]
            return locality_first_invoker_fast(
                self.context.cluster,
                queue.app_name,
                queue.function_name,
                config,
                now_ms,
                predecessor_invoker_id=predecessor_id,
            )
        predecessor_id = None
        if not queue.is_empty:
            job = queue.oldest_job()
            predecessor_id = job.request.predecessor_invoker(queue.stage_id)
        return locality_first_invoker(
            self.context.cluster,
            queue.app_name,
            queue.function_name,
            config,
            now_ms,
            predecessor_invoker_id=predecessor_id,
        )

    # ------------------------------------------------------------------
    # Ablation flags
    # ------------------------------------------------------------------
    @property
    def uses_gpu_sharing(self) -> bool:
        """False for the "without GPU sharing" ablation variant."""
        return self._gpu_sharing

    @property
    def uses_batching(self) -> bool:
        """False for the "without batching" ablation variant."""
        return self._batching
