"""The ESG scheduling algorithm (the paper's contribution).

* :mod:`repro.core.esg_1q` — the per-queue configuration-path search
  (A*/best-first over the staged configuration space) with dual-blade
  pruning and K-best output;
* :mod:`repro.core.dominator` — dominator-tree construction, ANL labelling,
  reduction, stage grouping and SLO distribution;
* :mod:`repro.core.dispatch` — the locality-first ESG_Dispatch node
  selection;
* :mod:`repro.core.esg` — :class:`ESGPolicy`, gluing the pieces into a
  :class:`repro.cluster.policy_api.SchedulingPolicy` with per-stage
  adaptive re-planning.
"""

from repro.core.bounds import PathBounds, SuffixBounds
from repro.core.bruteforce import brute_force_search
from repro.core.config import Configuration, ConfigurationSpace
from repro.core.dispatch import locality_first_invoker
from repro.core.dominator import (
    DominatorTree,
    SLODistribution,
    StageGroup,
    compute_anl,
    distribute_slo,
)
from repro.core.esg import ESGPolicy
from repro.core.esg_1q import ESG1QResult, PathCandidate, StageSearchSpec, esg_1q_search

__all__ = [
    "Configuration",
    "ConfigurationSpace",
    "PathBounds",
    "SuffixBounds",
    "brute_force_search",
    "locality_first_invoker",
    "DominatorTree",
    "SLODistribution",
    "StageGroup",
    "compute_anl",
    "distribute_slo",
    "ESGPolicy",
    "ESG1QResult",
    "PathCandidate",
    "StageSearchSpec",
    "esg_1q_search",
]
