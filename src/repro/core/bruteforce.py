"""Exhaustive configuration-path search.

Serves two purposes:

* an *oracle* for the tests of ESG_1Q — on small spaces the cheapest
  SLO-feasible path found by the pruned search must match the exhaustive
  optimum;
* the brute-force baseline of the overhead analysis (Section 5.3 quotes
  7258 ms for three stages with 256 configurations each, versus < 10 ms for
  ESG).
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass
from typing import Sequence

from repro.core.esg_1q import PathCandidate, StageSearchSpec

__all__ = ["BruteForceResult", "brute_force_search"]


@dataclass
class BruteForceResult:
    """Outcome of an exhaustive path enumeration."""

    paths: list[PathCandidate]
    target_latency_ms: float
    feasible: bool
    examined: int
    search_time_ms: float

    @property
    def best(self) -> PathCandidate | None:
        """The cheapest feasible path, or ``None`` if none meets the target."""
        return self.paths[0] if self.paths else None


def brute_force_search(
    stages: Sequence[StageSearchSpec],
    target_latency_ms: float,
    *,
    k: int = 5,
    max_examined: int = 50_000_000,
) -> BruteForceResult:
    """Enumerate every configuration path and keep the K cheapest feasible ones.

    Parameters
    ----------
    stages:
        Stage search specs, as for :func:`repro.core.esg_1q.esg_1q_search`.
    target_latency_ms:
        The latency budget a path must satisfy (strictly below, matching the
        ESG_1Q pruning condition ``tLow >= GSLO -> prune``).
    k:
        Number of cheapest feasible paths to return.
    max_examined:
        Safety cap on the number of enumerated paths.
    """
    if not stages:
        raise ValueError("brute_force_search needs at least one stage")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")

    # repro: allow[REP001] search_time_ms is a diagnostic on the result (the figure-10 overhead comparison measures real search cost); it never enters the simulation timeline
    start = _time.perf_counter()
    feasible_paths: list[PathCandidate] = []
    examined = 0
    for combo in itertools.product(*(s.entries for s in stages)):
        examined += 1
        if examined > max_examined:
            break
        latency = sum(e.latency_ms for e in combo)
        if latency >= target_latency_ms:
            continue
        cost = sum(e.per_job_cost_cents for e in combo)
        feasible_paths.append(
            PathCandidate(
                configs=tuple(e.config for e in combo),
                latency_ms=latency,
                cost_cents=cost,
            )
        )
    feasible_paths.sort(key=lambda c: (c.cost_cents, c.latency_ms))
    # repro: allow[REP001] closes the diagnostic-only measurement started above
    search_time_ms = (_time.perf_counter() - start) * 1000.0
    return BruteForceResult(
        paths=feasible_paths[:k],
        target_latency_ms=target_latency_ms,
        feasible=bool(feasible_paths),
        examined=examined,
        search_time_ms=search_time_ms,
    )
