"""Small shared utilities used across the ESG reproduction.

The helpers here intentionally stay dependency-light (numpy only) so that
every other subpackage can import them without creating cycles.
"""

from repro.utils.rng import RngFactory, derive_rng
from repro.utils.stats import (
    EWMA,
    RunningStats,
    SummaryStats,
    percentile,
    summarize,
)
from repro.utils.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_positive_int,
)

__all__ = [
    "RngFactory",
    "derive_rng",
    "EWMA",
    "RunningStats",
    "SummaryStats",
    "percentile",
    "summarize",
    "ensure_in_range",
    "ensure_non_negative",
    "ensure_positive",
    "ensure_positive_int",
]
