"""Deterministic random-number management.

Simulations in this package are fully reproducible: every stochastic
component (arrival generation, performance noise, bootstrap sampling in the
Bayesian optimiser, ...) receives its own :class:`numpy.random.Generator`
derived from a single experiment seed.  Deriving independent child streams
instead of sharing one generator keeps results stable when components are
added, removed or reordered.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RngFactory", "derive_rng"]


def _stable_label_entropy(name: str) -> int:
    """A 32-bit integer that is a pure function of ``name``.

    The builtin ``hash()`` is salted per process (PYTHONHASHSEED), which
    would make "reproducible" streams differ between interpreter
    invocations — and between a parent and its spawned workers.
    """
    return int.from_bytes(hashlib.blake2s(name.encode(), digest_size=4).digest(), "little")


def derive_rng(seed: int, *names: str) -> np.random.Generator:
    """Return a generator whose stream is a pure function of ``seed`` and ``names``.

    Parameters
    ----------
    seed:
        The experiment-level seed.
    names:
        Any number of string labels identifying the consumer, e.g.
        ``derive_rng(42, "workload", "arrivals")``.
    """
    # Hash the labels into integers; SeedSequence mixes them with the seed.
    label_entropy = [_stable_label_entropy(name) for name in names]
    seq = np.random.SeedSequence([seed, *label_entropy])
    return np.random.default_rng(seq)


@dataclass
class RngFactory:
    """Factory handing out named, independent random streams.

    Examples
    --------
    >>> factory = RngFactory(seed=7)
    >>> arrivals = factory.get("arrivals")
    >>> noise = factory.get("noise")
    >>> arrivals is factory.get("arrivals")
    True
    """

    seed: int = 0
    _streams: dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def get(self, *names: str) -> np.random.Generator:
        """Return (and cache) the generator for the given label path."""
        key = "/".join(names)
        if key not in self._streams:
            self._streams[key] = derive_rng(self.seed, *names)
        return self._streams[key]

    def spawn(self, *names: str) -> "RngFactory":
        """Return a child factory with a seed derived from this one."""
        child_seed = int(derive_rng(self.seed, "spawn", *names).integers(0, 2**31 - 1))
        return RngFactory(seed=child_seed)

    def reset(self) -> None:
        """Drop all cached streams so they restart from their initial state."""
        self._streams.clear()
