"""Streaming and summary statistics helpers.

These are used by the metrics collector (latency / cost / overhead
distributions), by the prewarming predictor (EWMA of arrival intervals) and
by the experiment report generators (box-plot style summaries matching the
paper's figures).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["EWMA", "RunningStats", "SummaryStats", "percentile", "summarize"]


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0-100) of ``values``.

    Uses linear interpolation, matching :func:`numpy.percentile`.  Raises
    ``ValueError`` on an empty sequence to avoid silently producing NaNs in
    experiment tables.
    """
    if len(values) == 0:
        raise ValueError("cannot compute a percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass
class EWMA:
    """Exponentially weighted moving average.

    Used by the prewarming manager to predict the next invocation interval of
    a serverless function (Section 4 of the paper uses EWMA-based
    prediction).

    Parameters
    ----------
    alpha:
        Smoothing factor in (0, 1]; larger values weigh recent samples more.
    """

    alpha: float = 0.3
    _value: float | None = field(default=None, repr=False)
    _count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha}")

    def update(self, sample: float) -> float:
        """Fold ``sample`` into the average and return the new value."""
        if self._value is None:
            self._value = float(sample)
        else:
            self._value = self.alpha * float(sample) + (1.0 - self.alpha) * self._value
        self._count += 1
        return self._value

    @property
    def value(self) -> float | None:
        """Current average, or ``None`` if no sample has been observed."""
        return self._value

    @property
    def count(self) -> int:
        """Number of samples folded in so far."""
        return self._count


@dataclass
class RunningStats:
    """Numerically stable streaming mean / variance (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def update(self, sample: float) -> None:
        """Fold one observation into the running statistics."""
        x = float(sample)
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)

    def update_many(self, samples: Iterable[float]) -> None:
        """Fold every observation of ``samples``."""
        for s in samples:
            self.update(s)

    @property
    def variance(self) -> float:
        """Sample variance (0.0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)


@dataclass(frozen=True)
class SummaryStats:
    """Five-number style summary used in figure reproductions."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dictionary (handy for tables)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute a :class:`SummaryStats` over ``values`` (must be non-empty)."""
    if len(values) == 0:
        raise ValueError("cannot summarise an empty sequence")
    arr = np.asarray(values, dtype=float)
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p25=float(np.percentile(arr, 25)),
        median=float(np.percentile(arr, 50)),
        p75=float(np.percentile(arr, 75)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )
