"""Argument validation helpers with uniform error messages."""

from __future__ import annotations

__all__ = [
    "ensure_positive",
    "ensure_positive_int",
    "ensure_non_negative",
    "ensure_in_range",
    "find_duplicates",
]


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` if it is strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def ensure_positive_int(value: int, name: str) -> int:
    """Return ``value`` if it is a strictly positive integer."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is >= 0, else raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def ensure_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return ``value`` if ``low <= value <= high``, else raise ``ValueError``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return float(value)


def find_duplicates(items) -> list:
    """Items appearing more than once, in first-duplicate order.

    Single linear pass (hashable items); used by the experiment sweeps to
    refuse result keys that would silently overwrite each other.
    """
    seen: set = set()
    duplicates: list = []
    for item in items:
        if item in seen and item not in duplicates:
            duplicates.append(item)
        seen.add(item)
    return duplicates
